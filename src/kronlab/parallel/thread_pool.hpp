// kronlab/parallel/thread_pool.hpp
//
// A small fixed-size thread pool used by the parallel kernels.
//
// Design notes (following the shared-memory model of the HPC guides):
//  * All parallelism in kronlab is explicit fork/join over index ranges —
//    there are no detached tasks, so shutdown is deterministic (RAII).
//  * The pool is created once (see global_pool()) because thread creation
//    costs dominate kernels on factor-sized inputs.
//  * Exceptions thrown by workers are captured and rethrown on the calling
//    thread after the join, so parallel kernels keep the same error contract
//    as serial ones.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kronlab {

class ThreadPool {
public:
  /// Create a pool with `num_threads` workers.  `num_threads == 0` selects
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Run `fn(worker_id)` on every worker (ids 0..size()-1, id 0 is the
  /// calling thread) and wait for all of them.  Rethrows the first captured
  /// worker exception.
  void run(const std::function<void(std::size_t)>& fn);

private:
  void worker_loop(std::size_t id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t epoch_ = 0;
  std::size_t remaining_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Process-wide pool, sized from the environment variable KRONLAB_THREADS if
/// set, else hardware concurrency.
ThreadPool& global_pool();

} // namespace kronlab
