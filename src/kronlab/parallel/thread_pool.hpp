// kronlab/parallel/thread_pool.hpp
//
// A small fixed-size thread pool used by the parallel kernels.
//
// Design notes (following the shared-memory model of the HPC guides):
//  * All parallelism in kronlab is explicit fork/join over index ranges —
//    there are no detached tasks, so shutdown is deterministic (RAII).
//  * The pool is created once (see global_pool()) because thread creation
//    costs dominate kernels on factor-sized inputs.
//  * Exceptions thrown by workers are captured and rethrown on the calling
//    thread after the join, so parallel kernels keep the same error contract
//    as serial ones.

#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "kronlab/common/sync.hpp"

namespace kronlab {

class ThreadPool {
public:
  /// Create a pool with `num_threads` workers.  `num_threads == 0` selects
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Run `fn(worker_id)` on every worker (ids 0..size()-1, id 0 is the
  /// calling thread) and wait for all of them.  Rethrows the first captured
  /// worker exception.
  ///
  /// Calling run() from inside a parallel region (i.e. from a worker that
  /// is itself executing a job) would deadlock the fork/join protocol, so
  /// nested calls degrade to executing `fn(0)` inline on the caller.  The
  /// parallel_for helpers detect nesting themselves and fall back to their
  /// serial paths, which cover the whole range.
  ///
  /// Concurrent run() calls from *distinct* threads (e.g. simulated
  /// distributed ranks each invoking a parallel kernel) serialize on an
  /// internal mutex: one fork/join completes before the next starts.
  /// Without that, two callers overwrite each other's job pointer and
  /// completion count — lost work at best, a deadlocked caller at worst.
  void run(const std::function<void(std::size_t)>& fn);

  /// True while the current thread is executing inside a pool job — used
  /// by the loop helpers to serialize nested parallelism.
  [[nodiscard]] static bool in_parallel_region();

private:
  void worker_loop(std::size_t id);

  std::vector<std::thread> workers_;
  Mutex run_mutex_; ///< serializes external run() callers
  Mutex mutex_;     ///< guards the fork/join protocol state below
  CondVar cv_start_;
  CondVar cv_done_;
  const std::function<void(std::size_t)>* job_ GUARDED_BY(mutex_) = nullptr;
  std::size_t epoch_ GUARDED_BY(mutex_) = 0;
  std::size_t remaining_ GUARDED_BY(mutex_) = 0;
  bool stop_ GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ GUARDED_BY(mutex_);
};

/// Process-wide pool, sized from the environment variable KRONLAB_THREADS if
/// set, else hardware concurrency.  Respects ScopedPoolOverride.
ThreadPool& global_pool();

/// Redirect global_pool() on the current thread to a caller-owned pool for
/// the guard's lifetime.  This is how benchmarks and determinism tests run
/// library kernels (which default to global_pool()) at a chosen width
/// without touching the process-wide singleton.  Overrides nest.
class ScopedPoolOverride {
public:
  explicit ScopedPoolOverride(ThreadPool& pool);
  ~ScopedPoolOverride();

  ScopedPoolOverride(const ScopedPoolOverride&) = delete;
  ScopedPoolOverride& operator=(const ScopedPoolOverride&) = delete;

private:
  ThreadPool* prev_;
};

} // namespace kronlab
