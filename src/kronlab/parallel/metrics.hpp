// kronlab/parallel/metrics.hpp
//
// Opt-in per-kernel observability for the parallel runtime.
//
// A KernelScope names the kernel executing on the calling thread; the
// dynamic dispatchers in parallel_for.hpp report per-worker busy time,
// chunk counts, and item counts into the innermost active scope.  When the
// scope is destroyed it folds its measurements — wall time, total and
// slowest-worker busy time, chunk/item counts, and the derived
// load-imbalance ratio — into a process-wide registry that can be dumped
// as text or JSON from the benchmark harnesses.
//
// Everything is disabled (and near-zero cost: one thread_local read per
// parallel region) until metrics::set_enabled(true) is called or the
// process starts with KRONLAB_METRICS=1 in the environment.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kronlab/common/sync.hpp"
#include "kronlab/common/timer.hpp"

namespace kronlab::metrics {

/// Aggregated measurements for one named kernel.
struct KernelStats {
  std::uint64_t calls = 0;   ///< completed KernelScopes with this name
  double wall_seconds = 0.0; ///< scope lifetime, summed over calls
  double busy_seconds = 0.0; ///< Σ over workers of in-region busy time
  double max_worker_seconds = 0.0; ///< Σ over calls of the slowest worker
  std::uint64_t chunks = 0;  ///< dynamically dispatched chunks
  std::uint64_t items = 0;   ///< loop iterations covered by those chunks
  std::size_t max_workers = 0; ///< widest parallel region observed

  /// Load-imbalance ratio: slowest worker over mean worker, >= 1.
  /// 1.0 is perfect balance; max_workers means one worker did everything.
  [[nodiscard]] double imbalance() const;
};

/// True when recording is on (set_enabled(true) or KRONLAB_METRICS=1).
[[nodiscard]] bool enabled();

/// Turn recording on or off process-wide.
void set_enabled(bool on);

/// RAII guard naming the kernel running on this thread.  Scopes nest;
/// dispatch measurements are attributed to the innermost scope.  When
/// metrics are disabled at construction time the scope is inert.
class KernelScope {
public:
  explicit KernelScope(std::string name);
  ~KernelScope();

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

  /// Innermost active scope on this thread (nullptr when none, or when
  /// metrics are disabled).  Dispatchers capture this on the calling
  /// thread before forking so workers report to the right scope.
  [[nodiscard]] static KernelScope* current();

  /// Report one worker's contribution to a parallel region run under this
  /// scope.  Called at most once per worker per region; thread-safe.
  void note_worker(std::size_t worker, double busy_seconds,
                   std::uint64_t chunks, std::uint64_t items);

  /// Arena-interned kernel name when tracing was enabled at construction
  /// (nullptr otherwise).  The dynamic dispatchers label per-worker trace
  /// spans with it.
  [[nodiscard]] const char* trace_name() const { return trace_name_; }

private:
  std::string name_;
  std::uint64_t start_ns_ = 0; ///< timer::now_ns() at construction
  const char* trace_name_ = nullptr;
  KernelScope* parent_ = nullptr;
  bool active_ = false;
  Mutex mu_; ///< guards the per-region worker measurements below
  std::vector<double> worker_busy_ GUARDED_BY(mu_); ///< indexed by worker id
  std::uint64_t chunks_ GUARDED_BY(mu_) = 0;
  std::uint64_t items_ GUARDED_BY(mu_) = 0;
};

/// RAII recording window: enables recording and clears the registry on
/// entry, restores the previous enabled state on exit (recorded stats are
/// left in place for the caller to snapshot).  The bench harness opens one
/// of these around every run so each BENCH_*.json carries exactly that
/// run's per-kernel dispatch measurements.
class ScopedRecording {
public:
  ScopedRecording();
  ~ScopedRecording();

  ScopedRecording(const ScopedRecording&) = delete;
  ScopedRecording& operator=(const ScopedRecording&) = delete;

private:
  bool prev_;
};

/// Snapshot of the registry (kernel name → aggregated stats).
[[nodiscard]] std::map<std::string, KernelStats> snapshot();

/// Add `delta` to the named process-wide counter.  Counters are the
/// scalar sibling of KernelStats — subsystems publish event totals (e.g.
/// the dist aggregator's agg_* flush-reason counters) that the bench
/// harness folds into kronlab-bench-v1 JSON next to the kernel table.
/// No-op while recording is off; thread-safe.
void counter_add(const std::string& name, double delta);

/// Snapshot of the named counters (counter name → value).
[[nodiscard]] std::map<std::string, double> counters_snapshot();

/// Drop all recorded stats and counters (enabled state is unchanged).
void reset();

/// Fold `other` into `into` (sums everything, max of max_workers) — used
/// by the bench harness to combine per-rep registry snapshots.
void merge(KernelStats& into, const KernelStats& other);

/// Human-readable table, one kernel per line, sorted by wall time.
[[nodiscard]] std::string report_text();

/// Machine-readable dump:
/// {"kernels": [{"name": ..., ...}, ...], "counters": {...}}.
/// The "counters" key is present only when at least one counter was
/// recorded, so pre-counter consumers see an unchanged shape.
[[nodiscard]] std::string report_json();

/// Same, for an explicit snapshot instead of the live registry.
[[nodiscard]] std::string report_json(
    const std::map<std::string, KernelStats>& kernels);

/// Same, with an explicit counter snapshot.
[[nodiscard]] std::string report_json(
    const std::map<std::string, KernelStats>& kernels,
    const std::map<std::string, double>& counters);

} // namespace kronlab::metrics
