// kronlab/gen/canonical.hpp
//
// Canonical small factor graphs.  The paper's Figs. 1 and 3 build Kronecker
// products from graphs of this size; these are also the factor families used
// throughout the test suite.

#pragma once

#include "kronlab/graph/graph.hpp"

namespace kronlab::gen {

using graph::Adjacency;

/// Path P_n (n vertices, n−1 edges).  Bipartite, connected for n ≥ 1.
Adjacency path_graph(index_t n);

/// Cycle C_n (n ≥ 3).  Bipartite iff n is even.
Adjacency cycle_graph(index_t n);

/// Star S_n: one hub + n leaves.  Bipartite, connected.
Adjacency star_graph(index_t leaves);

/// Complete graph K_n.  Non-bipartite for n ≥ 3.
Adjacency complete_graph(index_t n);

/// Complete bipartite K_{nu,nw}.
Adjacency complete_bipartite(index_t nu, index_t nw);

/// Crown graph: K_{n,n} minus a perfect matching (n ≥ 3).  Bipartite,
/// connected, 4-cycle rich.
Adjacency crown_graph(index_t n);

/// d-dimensional hypercube Q_d.  Bipartite, connected.
Adjacency hypercube(int d);

/// Rectangular grid (r×c vertices, 4-neighborhood).  Bipartite, connected.
Adjacency grid_graph(index_t rows, index_t cols);

/// Double star: two adjacent hubs with `a` and `b` private leaves.
/// Bipartite, connected, square-free.
Adjacency double_star(index_t a, index_t b);

/// A triangle with a pendant path of `tail` vertices — the smallest
/// interesting connected non-bipartite factor family for Assumption 1(i).
Adjacency triangle_with_tail(index_t tail);

/// Wheel W_n: a hub joined to every vertex of C_n (n ≥ 3).
/// Non-bipartite, connected — a natural Assumption 1(i) left factor with
/// hub skew.
Adjacency wheel_graph(index_t n);

/// Quadrilateral book B_n: n squares ("pages") sharing one common edge.
/// Bipartite, connected, with exactly n 4-cycles — a factor family where
/// every square passes through one edge (the spine).
Adjacency book_graph(index_t pages);

/// Disjoint union (block diagonal) of two graphs.
Adjacency disjoint_union(const Adjacency& a, const Adjacency& b);

} // namespace kronlab::gen
