#include "kronlab/gen/random_bipartite.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "kronlab/common/error.hpp"

namespace kronlab::gen {

namespace {

using EdgeList = std::vector<std::pair<index_t, index_t>>;

/// Pack a bipartite (u, w-local) pair for dedup sets.
inline std::uint64_t pack(index_t u, index_t w_local, index_t nw) {
  return static_cast<std::uint64_t>(u) * static_cast<std::uint64_t>(nw) +
         static_cast<std::uint64_t>(w_local);
}

} // namespace

Adjacency random_bipartite(index_t nu, index_t nw, count_t m, Rng& rng) {
  KRONLAB_REQUIRE(nu >= 1 && nw >= 1, "sides must be non-empty");
  KRONLAB_REQUIRE(m >= 0 && m <= nu * nw, "edge count out of range");
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(m));
  while (static_cast<count_t>(edges.size()) < m) {
    const index_t u = rng.uniform(0, nu - 1);
    const index_t w = rng.uniform(0, nw - 1);
    if (seen.insert(pack(u, w, nw)).second) {
      edges.emplace_back(u, nu + w);
    }
  }
  return graph::from_undirected_edges(nu + nw, edges);
}

Adjacency connected_random_bipartite(index_t nu, index_t nw, count_t m,
                                     Rng& rng) {
  KRONLAB_REQUIRE(nu >= 1 && nw >= 1, "sides must be non-empty");
  KRONLAB_REQUIRE(m >= nu + nw - 1, "too few edges for connectivity");
  KRONLAB_REQUIRE(m <= nu * nw, "edge count exceeds complete bipartite");

  std::unordered_set<std::uint64_t> seen;
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(m));

  // Spanning structure: attach each new vertex (alternating side order when
  // possible) to a uniformly random already-attached vertex on the other
  // side.  This is a bipartite random recursive tree.
  std::vector<index_t> attached_u{0};
  std::vector<index_t> attached_w;
  index_t next_u = 1, next_w = 0;
  while (next_u < nu || next_w < nw) {
    const bool grow_w =
        next_w < nw && (next_u >= nu || attached_w.size() <= attached_u.size());
    if (grow_w) {
      const index_t u =
          attached_u[static_cast<std::size_t>(rng.uniform(
              0, static_cast<index_t>(attached_u.size()) - 1))];
      seen.insert(pack(u, next_w, nw));
      edges.emplace_back(u, nu + next_w);
      attached_w.push_back(next_w++);
    } else {
      KRONLAB_REQUIRE(!attached_w.empty(),
                      "internal: cannot attach U vertex before any W exists");
      const index_t w =
          attached_w[static_cast<std::size_t>(rng.uniform(
              0, static_cast<index_t>(attached_w.size()) - 1))];
      seen.insert(pack(next_u, w, nw));
      edges.emplace_back(next_u, nu + w);
      attached_u.push_back(next_u++);
    }
  }

  while (static_cast<count_t>(edges.size()) < m) {
    const index_t u = rng.uniform(0, nu - 1);
    const index_t w = rng.uniform(0, nw - 1);
    if (seen.insert(pack(u, w, nw)).second) {
      edges.emplace_back(u, nu + w);
    }
  }
  return graph::from_undirected_edges(nu + nw, edges);
}

Adjacency preferential_bipartite(index_t nu, index_t nw, count_t m,
                                 Rng& rng) {
  KRONLAB_REQUIRE(nu >= 1 && nw >= 1, "sides must be non-empty");
  KRONLAB_REQUIRE(m >= 0 && m <= nu * nw, "edge count out of range");
  std::unordered_set<std::uint64_t> seen;
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(m));
  // Repeat-draw urns: each accepted edge adds its endpoints to the urns,
  // giving P(pick v) ∝ deg(v) + 1 via the mixture of urn and uniform draw.
  std::vector<index_t> urn_u, urn_w;
  count_t attempts = 0;
  const count_t max_attempts = 64 * (m + 16);
  while (static_cast<count_t>(edges.size()) < m) {
    // Excessive duplicate draws can only happen near the complete graph;
    // fall back to uniform fill to guarantee termination.
    if (++attempts > max_attempts) {
      for (index_t u = 0; u < nu && static_cast<count_t>(edges.size()) < m;
           ++u) {
        for (index_t w = 0; w < nw && static_cast<count_t>(edges.size()) < m;
             ++w) {
          if (seen.insert(pack(u, w, nw)).second) {
            edges.emplace_back(u, nu + w);
          }
        }
      }
      break;
    }
    const bool urn_pick_u = !urn_u.empty() && rng.bernoulli(0.7);
    const bool urn_pick_w = !urn_w.empty() && rng.bernoulli(0.7);
    const index_t u =
        urn_pick_u ? urn_u[static_cast<std::size_t>(rng.uniform(
                         0, static_cast<index_t>(urn_u.size()) - 1))]
                   : rng.uniform(0, nu - 1);
    const index_t w =
        urn_pick_w ? urn_w[static_cast<std::size_t>(rng.uniform(
                         0, static_cast<index_t>(urn_w.size()) - 1))]
                   : rng.uniform(0, nw - 1);
    if (seen.insert(pack(u, w, nw)).second) {
      edges.emplace_back(u, nu + w);
      urn_u.push_back(u);
      urn_w.push_back(w);
    }
  }
  return graph::from_undirected_edges(nu + nw, edges);
}

Adjacency chung_lu_bipartite(const std::vector<double>& wu,
                             const std::vector<double>& ww, Rng& rng) {
  KRONLAB_REQUIRE(!wu.empty() && !ww.empty(), "weights must be non-empty");
  double total = 0.0;
  for (const double w : wu) {
    KRONLAB_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  double total_w = 0.0;
  for (const double w : ww) {
    KRONLAB_REQUIRE(w >= 0.0, "weights must be non-negative");
    total_w += w;
  }
  KRONLAB_REQUIRE(total > 0.0 && total_w > 0.0, "weights must not all be 0");
  const double norm = std::max(total, total_w);
  const auto nu = static_cast<index_t>(wu.size());
  const auto nw = static_cast<index_t>(ww.size());
  EdgeList edges;
  for (index_t u = 0; u < nu; ++u) {
    for (index_t w = 0; w < nw; ++w) {
      const double p = std::min(
          1.0, wu[static_cast<std::size_t>(u)] *
                   ww[static_cast<std::size_t>(w)] / norm);
      if (rng.bernoulli(p)) edges.emplace_back(u, nu + w);
    }
  }
  return graph::from_undirected_edges(nu + nw, edges);
}

Adjacency planted_community_bipartite(const PlantedCommunity& pc, Rng& rng) {
  KRONLAB_REQUIRE(pc.nu >= 1 && pc.nw >= 1, "sides must be non-empty");
  KRONLAB_REQUIRE(pc.r >= 0 && pc.r <= pc.nu, "community R size out of range");
  KRONLAB_REQUIRE(pc.t >= 0 && pc.t <= pc.nw, "community T size out of range");
  KRONLAB_REQUIRE(pc.p_in >= 0.0 && pc.p_in <= 1.0, "p_in out of range");
  KRONLAB_REQUIRE(pc.p_out >= 0.0 && pc.p_out <= 1.0, "p_out out of range");
  EdgeList edges;
  for (index_t u = 0; u < pc.nu; ++u) {
    for (index_t w = 0; w < pc.nw; ++w) {
      const bool inside = (u < pc.r) && (w < pc.t);
      if (rng.bernoulli(inside ? pc.p_in : pc.p_out)) {
        edges.emplace_back(u, pc.nu + w);
      }
    }
  }
  return graph::from_undirected_edges(pc.nu + pc.nw, edges);
}

Adjacency random_nonbipartite_connected(index_t n, count_t m, Rng& rng) {
  KRONLAB_REQUIRE(n >= 3, "need n >= 3 for an odd cycle");
  KRONLAB_REQUIRE(m >= n + 2, "need m >= n+2 edges (tree + full triangle)");
  KRONLAB_REQUIRE(m <= n * (n - 1) / 2, "edge count exceeds complete graph");
  std::unordered_set<std::uint64_t> seen;
  EdgeList edges;
  const auto add = [&](index_t i, index_t j) {
    if (i == j) return false;
    if (i > j) std::swap(i, j);
    if (!seen.insert(pack(i, j, n)).second) return false;
    edges.emplace_back(i, j);
    return true;
  };
  // Random recursive spanning tree.
  for (index_t v = 1; v < n; ++v) add(v, rng.uniform(0, v - 1));
  // Force a triangle on the first tree edge's endpoints plus vertex 2.
  add(0, 1);
  add(1, 2);
  add(0, 2);
  while (static_cast<count_t>(edges.size()) < m) {
    add(rng.uniform(0, n - 1), rng.uniform(0, n - 1));
  }
  return graph::from_undirected_edges(n, edges);
}

} // namespace kronlab::gen
