#include "kronlab/gen/rmat.hpp"

#include <cmath>
#include <unordered_set>

#include "kronlab/common/error.hpp"

namespace kronlab::gen {

std::pair<index_t, index_t> rmat_edge(const RmatParams& p, Rng& rng) {
  index_t u = 0, w = 0;
  // Descend the implicit 2x2 recursion independently per level; noise on
  // the quadrant probabilities is omitted (classic R-MAT).
  const int levels = std::max(p.scale_u, p.scale_w);
  for (int level = 0; level < levels; ++level) {
    const double r = rng.next_double();
    int qu = 0, qw = 0;
    if (r < p.a) {
      qu = 0;
      qw = 0;
    } else if (r < p.a + p.b) {
      qu = 0;
      qw = 1;
    } else if (r < p.a + p.b + p.c) {
      qu = 1;
      qw = 0;
    } else {
      qu = 1;
      qw = 1;
    }
    if (level < p.scale_u) u = (u << 1) | qu;
    if (level < p.scale_w) w = (w << 1) | qw;
  }
  return {u, w};
}

graph::Adjacency rmat_bipartite(const RmatParams& p, Rng& rng) {
  KRONLAB_REQUIRE(p.scale_u >= 0 && p.scale_u < 30, "scale_u out of range");
  KRONLAB_REQUIRE(p.scale_w >= 0 && p.scale_w < 30, "scale_w out of range");
  KRONLAB_REQUIRE(std::abs(p.a + p.b + p.c + p.d - 1.0) < 1e-9,
                  "quadrant probabilities must sum to 1");
  const index_t nu = index_t{1} << p.scale_u;
  const index_t nw = index_t{1} << p.scale_w;
  std::vector<std::pair<index_t, index_t>> edges;
  edges.reserve(static_cast<std::size_t>(p.edges));
  std::unordered_set<std::uint64_t> seen;
  for (count_t e = 0; e < p.edges; ++e) {
    const auto [u, w] = rmat_edge(p, rng);
    if (p.dedup) {
      const auto key = static_cast<std::uint64_t>(u) *
                           static_cast<std::uint64_t>(nw) +
                       static_cast<std::uint64_t>(w);
      if (!seen.insert(key).second) continue;
    }
    edges.emplace_back(u, nu + w);
  }
  return graph::from_undirected_edges(nu + nw, edges);
}

} // namespace kronlab::gen
