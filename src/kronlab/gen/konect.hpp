// kronlab/gen/konect.hpp
//
// Bridge from KONECT-style two-mode edge lists to bipartite adjacency
// matrices.  The paper's experiment (§IV) loads the `unicode` language
// network from KONECT; if you have the real file, load it here — otherwise
// use gen::unicode_like() (see unicode_like.hpp) as the documented
// substitution.

#pragma once

#include <string>

#include "kronlab/graph/graph.hpp"
#include "kronlab/grb/io.hpp"

namespace kronlab::gen {

/// Convert a parsed two-mode edge list to the block anti-diagonal bipartite
/// adjacency of Def. 7 (U vertices first).
graph::Adjacency bipartite_adjacency_from_edge_list(
    const grb::BipartiteEdgeList& el);

/// Load a KONECT out.* two-mode file as a bipartite adjacency.  The
/// parser rejects malformed lines (negative/zero ids, non-numeric
/// tokens, trailing garbage) with a line-numbered io_error; `opt`
/// additionally enables strict duplicate-edge rejection and tightens the
/// vertex-id plausibility cap.
graph::Adjacency load_konect_bipartite(const std::string& path,
                                       const grb::EdgeListOptions& opt = {});

} // namespace kronlab::gen
