#include "kronlab/gen/canonical.hpp"

#include <utility>
#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/grb/coo.hpp"

namespace kronlab::gen {

namespace {
using EdgeList = std::vector<std::pair<index_t, index_t>>;
} // namespace

Adjacency path_graph(index_t n) {
  KRONLAB_REQUIRE(n >= 1, "path_graph requires n >= 1");
  EdgeList edges;
  for (index_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return graph::from_undirected_edges(n, edges);
}

Adjacency cycle_graph(index_t n) {
  KRONLAB_REQUIRE(n >= 3, "cycle_graph requires n >= 3");
  EdgeList edges;
  for (index_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return graph::from_undirected_edges(n, edges);
}

Adjacency star_graph(index_t leaves) {
  KRONLAB_REQUIRE(leaves >= 1, "star_graph requires at least one leaf");
  EdgeList edges;
  for (index_t i = 1; i <= leaves; ++i) edges.emplace_back(0, i);
  return graph::from_undirected_edges(leaves + 1, edges);
}

Adjacency complete_graph(index_t n) {
  KRONLAB_REQUIRE(n >= 1, "complete_graph requires n >= 1");
  EdgeList edges;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return graph::from_undirected_edges(n, edges);
}

Adjacency complete_bipartite(index_t nu, index_t nw) {
  KRONLAB_REQUIRE(nu >= 1 && nw >= 1,
                  "complete_bipartite requires both sides non-empty");
  EdgeList edges;
  for (index_t i = 0; i < nu; ++i) {
    for (index_t j = 0; j < nw; ++j) edges.emplace_back(i, nu + j);
  }
  return graph::from_undirected_edges(nu + nw, edges);
}

Adjacency crown_graph(index_t n) {
  KRONLAB_REQUIRE(n >= 3, "crown_graph requires n >= 3");
  EdgeList edges;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (i != j) edges.emplace_back(i, n + j);
    }
  }
  return graph::from_undirected_edges(2 * n, edges);
}

Adjacency hypercube(int d) {
  KRONLAB_REQUIRE(d >= 0 && d < 20, "hypercube requires 0 <= d < 20");
  const index_t n = index_t{1} << d;
  EdgeList edges;
  for (index_t v = 0; v < n; ++v) {
    for (int b = 0; b < d; ++b) {
      const index_t u = v ^ (index_t{1} << b);
      if (v < u) edges.emplace_back(v, u);
    }
  }
  return graph::from_undirected_edges(n, edges);
}

Adjacency grid_graph(index_t rows, index_t cols) {
  KRONLAB_REQUIRE(rows >= 1 && cols >= 1, "grid_graph requires rows,cols >= 1");
  EdgeList edges;
  const auto id = [cols](index_t r, index_t c) { return r * cols + c; };
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return graph::from_undirected_edges(rows * cols, edges);
}

Adjacency double_star(index_t a, index_t b) {
  KRONLAB_REQUIRE(a >= 0 && b >= 0, "double_star requires a,b >= 0");
  EdgeList edges;
  edges.emplace_back(0, 1); // the two hubs
  for (index_t i = 0; i < a; ++i) edges.emplace_back(0, 2 + i);
  for (index_t i = 0; i < b; ++i) edges.emplace_back(1, 2 + a + i);
  return graph::from_undirected_edges(2 + a + b, edges);
}

Adjacency triangle_with_tail(index_t tail) {
  KRONLAB_REQUIRE(tail >= 0, "triangle_with_tail requires tail >= 0");
  EdgeList edges{{0, 1}, {1, 2}, {2, 0}};
  for (index_t i = 0; i < tail; ++i) edges.emplace_back(2 + i, 3 + i);
  return graph::from_undirected_edges(3 + tail, edges);
}

Adjacency wheel_graph(index_t n) {
  KRONLAB_REQUIRE(n >= 3, "wheel_graph requires rim size n >= 3");
  EdgeList edges;
  for (index_t i = 0; i < n; ++i) {
    edges.emplace_back(1 + i, 1 + (i + 1) % n); // rim cycle
    edges.emplace_back(0, 1 + i);               // spokes
  }
  return graph::from_undirected_edges(n + 1, edges);
}

Adjacency book_graph(index_t pages) {
  KRONLAB_REQUIRE(pages >= 1, "book_graph requires at least one page");
  // Vertices: 0 = u, 1 = v (the spine edge), then (x_i, y_i) per page.
  EdgeList edges{{0, 1}};
  for (index_t i = 0; i < pages; ++i) {
    const index_t x = 2 + 2 * i;
    const index_t y = 3 + 2 * i;
    edges.emplace_back(0, x);
    edges.emplace_back(x, y);
    edges.emplace_back(y, 1);
  }
  return graph::from_undirected_edges(2 + 2 * pages, edges);
}

Adjacency disjoint_union(const Adjacency& a, const Adjacency& b) {
  KRONLAB_REQUIRE(a.nrows() == a.ncols() && b.nrows() == b.ncols(),
                  "disjoint_union requires square adjacencies");
  grb::Coo<count_t> coo(a.nrows() + b.nrows(), a.ncols() + b.ncols());
  coo.reserve(a.nnz() + b.nnz());
  for (index_t i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.push(i, cols[k], vals[k]);
    }
  }
  for (index_t i = 0; i < b.nrows(); ++i) {
    const auto cols = b.row_cols(i);
    const auto vals = b.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.push(a.nrows() + i, a.ncols() + cols[k], vals[k]);
    }
  }
  return Adjacency::from_coo(coo);
}

} // namespace kronlab::gen
