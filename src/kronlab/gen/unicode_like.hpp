// kronlab/gen/unicode_like.hpp
//
// Synthetic stand-in for the KONECT `unicode` language network used in the
// paper's §IV experiment (Table I, Fig. 5).
//
// The real dataset is a small, disconnected two-mode graph: 254 languages ×
// 614 territories, 1,256 edges, 1,662 global 4-cycles, with a heavy-tail
// degree distribution.  We cannot ship it, so unicode_like() synthesizes a
// bipartite graph with the same shape: identical vertex-set sizes and edge
// count, Zipf-skewed degrees, one giant component plus small satellites.
//
// Every ground-truth theorem in the paper is exact for *any* bipartite
// factor, so the substitution preserves the experiment's logic; the bench
// prints the paper's reference numbers next to the measured ones so the
// shape comparison is explicit (see DESIGN.md §4).

#pragma once

#include "kronlab/common/random.hpp"
#include "kronlab/graph/graph.hpp"

namespace kronlab::gen {

/// Shape parameters matching konect `unicode`.
struct UnicodeLikeParams {
  index_t n_left = 254;
  index_t n_right = 614;
  count_t edges = 1256;
  double zipf_alpha = 1.2;      ///< left-side popularity skew
  index_t locality_window = 160; ///< right-side locality per left vertex
};

/// Generate the stand-in factor (block anti-diagonal adjacency, U first).
graph::Adjacency unicode_like(const UnicodeLikeParams& p, Rng& rng);

/// Default-parameter convenience overload with a fixed seed, so benches and
/// docs refer to one canonical instance.
graph::Adjacency unicode_like();

} // namespace kronlab::gen
