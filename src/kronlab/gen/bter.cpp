#include "kronlab/gen/bter.hpp"

#include "kronlab/common/error.hpp"

namespace kronlab::gen {

graph::Adjacency bter_bipartite(const BterParams& p, Rng& rng) {
  KRONLAB_REQUIRE(p.blocks >= 1 && p.block_u >= 1 && p.block_w >= 1,
                  "bter: block geometry must be positive");
  KRONLAB_REQUIRE(p.p_in >= 0.0 && p.p_in <= 1.0, "bter: p_in out of range");
  KRONLAB_REQUIRE(p.p_out >= 0.0 && p.p_out <= 1.0,
                  "bter: p_out out of range");
  const index_t nu = p.blocks * p.block_u;
  const index_t nw = p.blocks * p.block_w;
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t u = 0; u < nu; ++u) {
    const index_t bu = u / p.block_u;
    for (index_t w = 0; w < nw; ++w) {
      const index_t bw = w / p.block_w;
      if (rng.bernoulli(bu == bw ? p.p_in : p.p_out)) {
        edges.emplace_back(u, nu + w);
      }
    }
  }
  return graph::from_undirected_edges(nu + nw, edges);
}

} // namespace kronlab::gen
