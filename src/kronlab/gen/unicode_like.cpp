#include "kronlab/gen/unicode_like.hpp"

#include <unordered_set>
#include <utility>
#include <vector>

#include "kronlab/common/error.hpp"

namespace kronlab::gen {

graph::Adjacency unicode_like(const UnicodeLikeParams& p, Rng& rng) {
  KRONLAB_REQUIRE(p.n_left >= 2 && p.n_right >= 2, "sides too small");
  KRONLAB_REQUIRE(p.edges <= p.n_left * p.n_right, "too many edges");
  KRONLAB_REQUIRE(p.locality_window >= 1 && p.locality_window <= p.n_right,
                  "locality window out of range");
  // Model: left vertices ("languages") have Zipf-ranked popularity; each
  // has a home position on the right side ("territories") and its edges
  // land inside a locality window around that home.  The window is what
  // keeps the 4-cycle count low at a realistic max degree: two hubs only
  // share neighbors where their windows overlap — like real linguistic
  // geography.  Like the real KONECT data, some vertices stay isolated and
  // the graph is disconnected.
  std::vector<index_t> home(static_cast<std::size_t>(p.n_left));
  for (auto& h : home) h = rng.uniform(0, p.n_right - 1);

  std::unordered_set<std::uint64_t> seen;
  std::vector<std::pair<index_t, index_t>> edges;
  edges.reserve(static_cast<std::size_t>(p.edges));
  while (static_cast<count_t>(edges.size()) < p.edges) {
    const index_t u = zipf_sample(rng, p.n_left, p.zipf_alpha) - 1;
    const index_t off = rng.uniform(0, p.locality_window - 1);
    const index_t w =
        (home[static_cast<std::size_t>(u)] + off) % p.n_right;
    const auto key = static_cast<std::uint64_t>(u) *
                         static_cast<std::uint64_t>(p.n_right) +
                     static_cast<std::uint64_t>(w);
    if (seen.insert(key).second) {
      edges.emplace_back(u, p.n_left + w);
    }
  }
  return graph::from_undirected_edges(p.n_left + p.n_right, edges);
}

graph::Adjacency unicode_like() {
  Rng rng(20200518); // fixed seed: one canonical instance for Table I/Fig 5
  return unicode_like(UnicodeLikeParams{}, rng);
}

} // namespace kronlab::gen
