// kronlab/gen/random_bipartite.hpp
//
// Randomized factor families used by the property-test suite and the
// scaling-law benches: uniform bipartite, connected bipartite, heavy-tail
// (preferential-attachment) bipartite, Chung–Lu bipartite, planted-community
// bipartite, and connected non-bipartite graphs (for Assumption 1(i)).
//
// All generators are deterministic functions of their Rng.

#pragma once

#include "kronlab/common/random.hpp"
#include "kronlab/graph/graph.hpp"

namespace kronlab::gen {

using graph::Adjacency;

/// Uniform bipartite G(nu, nw, m): exactly m distinct edges chosen
/// uniformly from the nu×nw grid.  Not necessarily connected.
Adjacency random_bipartite(index_t nu, index_t nw, count_t m, Rng& rng);

/// Connected bipartite graph: a random alternating spanning tree over all
/// nu + nw vertices plus (m − (nu+nw−1)) uniform extra edges.
/// Requires m ≥ nu + nw − 1 and m ≤ nu·nw.
Adjacency connected_random_bipartite(index_t nu, index_t nw, count_t m,
                                     Rng& rng);

/// Heavy-tail bipartite graph by preferential attachment: each of the m
/// edges picks endpoints with probability proportional to (degree + 1).
/// Produces the scale-free skew the paper wants from factors.
Adjacency preferential_bipartite(index_t nu, index_t nw, count_t m,
                                 Rng& rng);

/// Bipartite Chung–Lu: edge (u,w) present independently with probability
/// min(1, wu[u]·ww[w] / Σwu).  Expected degrees follow the weight vectors.
Adjacency chung_lu_bipartite(const std::vector<double>& wu,
                             const std::vector<double>& ww, Rng& rng);

/// Parameters of a planted bipartite community.
struct PlantedCommunity {
  index_t nu = 0;        ///< total left vertices
  index_t nw = 0;        ///< total right vertices
  index_t r = 0;         ///< community left size (vertices 0..r-1)
  index_t t = 0;         ///< community right size (vertices nu..nu+t-1)
  double p_in = 0.5;     ///< edge probability inside the R×T block
  double p_out = 0.02;   ///< edge probability elsewhere
};

/// Bipartite graph with one dense planted block (community benches for
/// Thm 7 / Cors 1–2).
Adjacency planted_community_bipartite(const PlantedCommunity& pc, Rng& rng);

/// Connected non-bipartite graph: random connected graph on n vertices with
/// m edges, with one triangle forced so an odd cycle always exists.
/// Requires m ≥ n + 2 (spanning tree + full triangle) and n ≥ 3.
Adjacency random_nonbipartite_connected(index_t n, count_t m, Rng& rng);

} // namespace kronlab::gen
