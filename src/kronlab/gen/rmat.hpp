// kronlab/gen/rmat.hpp
//
// Bipartite R-MAT — the *stochastic* Kronecker generator the paper contrasts
// against (§I, [23]).  Edges are drawn by recursive quadrant descent on the
// 2^scale_u × 2^scale_w biadjacency grid with probabilities (a, b, c, d).
//
// Included as the comparison baseline for generation benches (X2): it shows
// what nonstochastic Kronecker generation buys (exact ground truth) and what
// it costs relative to a throughput-oriented sampler.

#pragma once

#include "kronlab/common/random.hpp"
#include "kronlab/graph/graph.hpp"

namespace kronlab::gen {

struct RmatParams {
  int scale_u = 8;   ///< left side has 2^scale_u vertices
  int scale_w = 8;   ///< right side has 2^scale_w vertices
  count_t edges = 1 << 12;
  double a = 0.57;   ///< quadrant probabilities, a+b+c+d must be 1
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  bool dedup = true; ///< drop duplicate edges (graph may end up with < edges)
};

/// Sample one bipartite edge (u, w) with w in [0, 2^scale_w).
std::pair<index_t, index_t> rmat_edge(const RmatParams& p, Rng& rng);

/// Generate the full graph as a (2^scale_u + 2^scale_w)-vertex adjacency.
graph::Adjacency rmat_bipartite(const RmatParams& p, Rng& rng);

} // namespace kronlab::gen
