#include "kronlab/gen/konect.hpp"

#include "kronlab/graph/bipartite.hpp"
#include "kronlab/grb/coo.hpp"

namespace kronlab::gen {

graph::Adjacency bipartite_adjacency_from_edge_list(
    const grb::BipartiteEdgeList& el) {
  grb::Coo<count_t> coo(el.n_left, el.n_right);
  coo.reserve(static_cast<offset_t>(el.edges.size()));
  for (const auto& [u, w] : el.edges) coo.push(u, w, 1);
  auto x = grb::Csr<count_t>::from_coo(coo);
  for (auto& v : x.vals()) v = 1; // collapse duplicate edges
  return graph::bipartite_from_biadjacency(x);
}

graph::Adjacency load_konect_bipartite(const std::string& path,
                                       const grb::EdgeListOptions& opt) {
  return bipartite_adjacency_from_edge_list(
      grb::read_bipartite_edge_list_file(path, opt));
}

} // namespace kronlab::gen
