// kronlab/gen/spec.hpp
//
// Textual factor specifications, shared by the kronlab_gen CLI and any
// harness that wants to name factor graphs in config files.
//
// Grammar (case-sensitive, comma-separated integer arguments):
//   path:N            cycle:N           star:LEAVES      complete:N
//   kbip:NU,NW        crown:N           hypercube:D      grid:R,C
//   dstar:A,B         tritail:T
//   randbip:NU,NW,M,SEED        connbip:NU,NW,M,SEED
//   prefbip:NU,NW,M,SEED        nonbip:N,M,SEED
//   unicode                     (the canonical Table-I stand-in factor)
//   konect:PATH                 (two-mode edge-list file)
//   mtx:PATH                    (MatrixMarket adjacency; must be square)

#pragma once

#include <string>

#include "kronlab/graph/graph.hpp"

namespace kronlab::gen {

/// Parse `spec` into an adjacency matrix.  Throws invalid_argument for
/// unknown names / malformed arguments, io_error for unreadable files.
graph::Adjacency parse_graph_spec(const std::string& spec);

/// Human-readable list of accepted spec forms (for --help texts).
std::string graph_spec_help();

} // namespace kronlab::gen
