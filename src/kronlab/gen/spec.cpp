#include "kronlab/gen/spec.hpp"

#include <sstream>
#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/common/random.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/konect.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/gen/unicode_like.hpp"
#include "kronlab/grb/io.hpp"

namespace kronlab::gen {

namespace {

std::vector<index_t> parse_ints(const std::string& args, std::size_t want,
                                const std::string& spec) {
  std::vector<index_t> out;
  std::istringstream ss(args);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    try {
      std::size_t pos = 0;
      out.push_back(static_cast<index_t>(std::stoll(tok, &pos)));
      if (pos != tok.size()) throw std::invalid_argument(tok);
    } catch (const std::exception&) {
      throw invalid_argument("bad integer '" + tok + "' in spec: " + spec);
    }
  }
  if (out.size() != want) {
    throw invalid_argument("spec '" + spec + "' expects " +
                           std::to_string(want) + " argument(s), got " +
                           std::to_string(out.size()));
  }
  return out;
}

} // namespace

graph::Adjacency parse_graph_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const std::string args =
      colon == std::string::npos ? "" : spec.substr(colon + 1);

  if (name == "path") return path_graph(parse_ints(args, 1, spec)[0]);
  if (name == "cycle") return cycle_graph(parse_ints(args, 1, spec)[0]);
  if (name == "star") return star_graph(parse_ints(args, 1, spec)[0]);
  if (name == "complete")
    return complete_graph(parse_ints(args, 1, spec)[0]);
  if (name == "kbip") {
    const auto v = parse_ints(args, 2, spec);
    return complete_bipartite(v[0], v[1]);
  }
  if (name == "crown") return crown_graph(parse_ints(args, 1, spec)[0]);
  if (name == "hypercube") {
    return hypercube(static_cast<int>(parse_ints(args, 1, spec)[0]));
  }
  if (name == "grid") {
    const auto v = parse_ints(args, 2, spec);
    return grid_graph(v[0], v[1]);
  }
  if (name == "dstar") {
    const auto v = parse_ints(args, 2, spec);
    return double_star(v[0], v[1]);
  }
  if (name == "tritail")
    return triangle_with_tail(parse_ints(args, 1, spec)[0]);
  if (name == "wheel") return wheel_graph(parse_ints(args, 1, spec)[0]);
  if (name == "book") return book_graph(parse_ints(args, 1, spec)[0]);
  if (name == "randbip") {
    const auto v = parse_ints(args, 4, spec);
    Rng rng(static_cast<std::uint64_t>(v[3]));
    return random_bipartite(v[0], v[1], v[2], rng);
  }
  if (name == "connbip") {
    const auto v = parse_ints(args, 4, spec);
    Rng rng(static_cast<std::uint64_t>(v[3]));
    return connected_random_bipartite(v[0], v[1], v[2], rng);
  }
  if (name == "prefbip") {
    const auto v = parse_ints(args, 4, spec);
    Rng rng(static_cast<std::uint64_t>(v[3]));
    return preferential_bipartite(v[0], v[1], v[2], rng);
  }
  if (name == "nonbip") {
    const auto v = parse_ints(args, 3, spec);
    Rng rng(static_cast<std::uint64_t>(v[2]));
    return random_nonbipartite_connected(v[0], v[1], rng);
  }
  if (name == "unicode") {
    if (!args.empty()) {
      throw invalid_argument("spec 'unicode' takes no arguments");
    }
    return unicode_like();
  }
  if (name == "konect") {
    if (args.empty()) throw invalid_argument("konect: needs a file path");
    return load_konect_bipartite(args);
  }
  if (name == "mtx") {
    if (args.empty()) throw invalid_argument("mtx: needs a file path");
    auto a = grb::read_matrix_market_file(args);
    KRONLAB_REQUIRE(a.nrows() == a.ncols(),
                    "mtx adjacency must be square");
    for (auto& v : a.vals()) v = 1;
    return a;
  }
  throw invalid_argument("unknown graph spec: " + spec);
}

std::string graph_spec_help() {
  return "  path:N cycle:N star:LEAVES complete:N kbip:NU,NW crown:N\n"
         "  hypercube:D grid:R,C dstar:A,B tritail:T wheel:N book:PAGES\n"
         "  randbip:NU,NW,M,SEED connbip:NU,NW,M,SEED\n"
         "  prefbip:NU,NW,M,SEED nonbip:N,M,SEED\n"
         "  unicode konect:PATH mtx:PATH";
}

} // namespace kronlab::gen
