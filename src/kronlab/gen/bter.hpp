// kronlab/gen/bter.hpp
//
// BTER-lite: a block two-level Erdős–Rényi bipartite generator in the
// spirit of Aksoy–Kolda–Pinar [27], the stochastic community-structure
// baseline the paper cites.  Left and right vertices are grouped into
// affinity blocks; each (left-block, right-block) pair on the diagonal is
// dense ER, everything else is sparse background ER.
//
// kronlab uses it for the community benches: stochastic block structure
// gives communities *in expectation*, while the Kronecker construction of
// §III-C gives exact Thm-7 counts — the contrast the paper draws.

#pragma once

#include "kronlab/common/random.hpp"
#include "kronlab/graph/graph.hpp"

namespace kronlab::gen {

struct BterParams {
  index_t blocks = 4;        ///< number of diagonal affinity blocks
  index_t block_u = 8;       ///< left vertices per block
  index_t block_w = 8;       ///< right vertices per block
  double p_in = 0.4;         ///< ER probability inside diagonal blocks
  double p_out = 0.01;       ///< ER probability across blocks
};

graph::Adjacency bter_bipartite(const BterParams& p, Rng& rng);

} // namespace kronlab::gen
