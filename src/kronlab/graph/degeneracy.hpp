// kronlab/graph/degeneracy.hpp
//
// Degeneracy ordering and k-core decomposition.
//
// §I quotes the best sparse 4-cycle detection bound as O(E·δ(G)) with
// δ(G) the degeneracy, "an O(E^{1/2}) quantity".  kronlab ships the
// linear-time peeling algorithm (Matula–Beck) so benches can report δ for
// generated graphs and validate that complexity discussion.

#pragma once

#include <vector>

#include "kronlab/graph/graph.hpp"

namespace kronlab::graph {

struct CoreDecomposition {
  std::vector<count_t> core; ///< core number per vertex
  std::vector<index_t> order; ///< a degeneracy ordering (peel order)
  count_t degeneracy = 0;     ///< max core number = δ(G)
};

/// Peel minimum-degree vertices (bucket queue, O(V + E)).
/// Requires a loop-free undirected adjacency.
CoreDecomposition core_decomposition(const Adjacency& a);

/// δ(G) alone.
count_t degeneracy(const Adjacency& a);

} // namespace kronlab::graph
