#include "kronlab/graph/graph.hpp"

#include <algorithm>

#include "kronlab/common/error.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::graph {

Adjacency from_undirected_edges(
    index_t n, const std::vector<std::pair<index_t, index_t>>& edges) {
  grb::Coo<count_t> coo(n, n);
  coo.reserve(static_cast<offset_t>(2 * edges.size()));
  for (const auto& [i, j] : edges) {
    KRONLAB_REQUIRE(i >= 0 && i < n && j >= 0 && j < n,
                    "edge endpoint out of range");
    coo.push_symmetric(i, j, 1);
  }
  auto a = Adjacency::from_coo(coo);
  // Collapse duplicate multiplicities to Boolean adjacency.
  for (auto& v : a.vals()) v = 1;
  return a;
}

bool is_undirected_adjacency(const Adjacency& a) {
  if (a.nrows() != a.ncols()) return false;
  for (const count_t v : a.vals()) {
    if (v != 1) return false;
  }
  return grb::is_symmetric(a);
}

void require_undirected(const Adjacency& a, const char* where) {
  if (!is_undirected_adjacency(a)) {
    throw domain_error(std::string(where) +
                       ": requires an undirected 0/1 adjacency matrix");
  }
}

count_t num_edges(const Adjacency& a) {
  return (a.nnz() + num_self_loops(a)) / 2;
}

count_t num_self_loops(const Adjacency& a) {
  count_t loops = 0;
  for (index_t i = 0; i < a.nrows(); ++i) {
    if (a.has(i, i)) ++loops;
  }
  return loops;
}

grb::Vector<count_t> degrees(const Adjacency& a) {
  return grb::reduce_rows(a);
}

grb::Vector<count_t> two_hop_walks(const Adjacency& a) {
  // w² = A (A 1): two mxv passes, never materializes A².
  return grb::mxv(a, grb::mxv(a, grb::ones<count_t>(a.ncols())));
}

count_t max_degree(const Adjacency& a) {
  const auto d = degrees(a);
  count_t m = 0;
  for (const count_t v : d) m = std::max(m, v);
  return m;
}

Adjacency strip_self_loops(const Adjacency& a) {
  KRONLAB_REQUIRE(a.nrows() == a.ncols(),
                  "strip_self_loops requires a square matrix");
  grb::Coo<count_t> coo(a.nrows(), a.ncols());
  coo.reserve(a.nnz());
  for (index_t i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] != i) coo.push(i, cols[k], vals[k]);
    }
  }
  return Adjacency::from_coo(coo);
}

} // namespace kronlab::graph
