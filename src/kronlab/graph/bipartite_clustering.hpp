// kronlab/graph/bipartite_clustering.hpp
//
// Bipartite clustering coefficients — the §III-B3 context.
//
// With no triangles, bipartite clustering is defined through 4-cycles.
// The literature the paper cites offers several notions:
//
//  * Robins–Alexander [14]: the global coefficient
//        C4 = 4·(#4-cycles) / (#paths of length 3),
//    "what fraction of 3-paths close into a square".
//  * Opsahl [16]: the same closure idea localized per vertex.
//  * Aksoy–Kolda–Pinar [27]: the per-edge "metamorphosis coefficient"
//    Γ(i,j) = ◇_ij / ((d_i−1)(d_j−1)) — the paper's Def. 10, implemented
//    in kron/clustering.hpp.
//
// kronlab provides the global and per-vertex variants here, plus a
// factor-space ground-truth evaluation of the Robins–Alexander coefficient
// for Kronecker products (every ingredient factorizes).

#pragma once

#include "kronlab/graph/graph.hpp"
#include "kronlab/kron/product.hpp"

namespace kronlab::graph {

/// Number of paths with 3 edges (4 distinct vertices), counted once per
/// path.  For loop-free bipartite graphs this is
/// Σ_{(i,j)∈E} (d_i−1)(d_j−1) over undirected edges (the two interior
/// vertices determine the path; bipartiteness rules out coincident
/// endpoints).  Requires bipartite loop-free input.
count_t three_paths(const Adjacency& a);

/// Robins–Alexander global bipartite clustering coefficient:
/// 4·#C4 / #P3, or 0 if the graph has no 3-paths.
double robins_alexander_cc(const Adjacency& a);

/// Opsahl-style local closure per vertex: the fraction of 3-paths with
/// midpoint-edge at v... localized as (4-cycles at v) / (3-paths centered
/// at v), where a 3-path is "centered" at v when v is one of its two
/// interior vertices.  Degree-1 interior vertices yield 0.
grb::Vector<double> local_closure(const Adjacency& a);

} // namespace kronlab::graph

namespace kronlab::kron {

/// Ground-truth #P3 of a product C = M ⊗ B in factor space:
///   #P3(C) = ½ [ (d_Mᵗ M d_M)·(d_Bᵗ B d_B)
///                − 2·(Σ_i d_M(i)²)·(Σ_k d_B(k)²)
///                + nnz(M)·nnz(B) ],
/// every ingredient factor-sized.  Requires the product to be bipartite
/// (B bipartite), which makes the 3-walk/3-path distinction vanish.
count_t product_three_paths(const BipartiteKronecker& kp);

/// Ground-truth Robins–Alexander coefficient of the product.
double product_robins_alexander_cc(const BipartiteKronecker& kp);

} // namespace kronlab::kron
