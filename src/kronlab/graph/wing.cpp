#include "kronlab/graph/wing.hpp"

#include <algorithm>
#include <queue>

#include "kronlab/common/error.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::graph {

namespace {

void require_bipartite_simple(const Adjacency& a, const char* where) {
  require_undirected(a, where);
  if (!grb::has_no_self_loops(a) || !is_bipartite(a)) {
    throw domain_error(std::string(where) +
                       ": requires a loop-free bipartite graph");
  }
}

/// Undirected edge bookkeeping over a symmetric CSR: each stored entry
/// maps to an undirected edge id shared with its mirror.
struct EdgeIndex {
  explicit EdgeIndex(const Adjacency& a) : a_(&a) {
    entry_edge.assign(static_cast<std::size_t>(a.nnz()), -1);
    index_t next = 0;
    for (index_t i = 0; i < a.nrows(); ++i) {
      const auto cols = a.row_cols(i);
      const auto base = static_cast<std::size_t>(a.row_ptr()[i]);
      for (std::size_t e = 0; e < cols.size(); ++e) {
        if (i < cols[e]) {
          entry_edge[base + e] = next;
          endpoints.emplace_back(i, cols[e]);
          ++next;
        }
      }
    }
    // Second pass fills the mirrored entries.
    for (index_t i = 0; i < a.nrows(); ++i) {
      const auto cols = a.row_cols(i);
      const auto base = static_cast<std::size_t>(a.row_ptr()[i]);
      for (std::size_t e = 0; e < cols.size(); ++e) {
        if (i > cols[e]) {
          entry_edge[base + e] = id(cols[e], i);
        }
      }
    }
  }

  /// Edge id of (u,v) with u < v, via binary search in row u.
  [[nodiscard]] index_t id(index_t u, index_t v) const {
    KRONLAB_DBG_ASSERT(u < v, "id expects u < v");
    const auto cols = a_->row_cols(u);
    const auto it = std::lower_bound(cols.begin(), cols.end(), v);
    KRONLAB_DBG_ASSERT(it != cols.end() && *it == v, "edge must exist");
    return entry_edge[static_cast<std::size_t>(a_->row_ptr()[u]) +
                      static_cast<std::size_t>(it - cols.begin())];
  }

  [[nodiscard]] index_t id_any(index_t u, index_t v) const {
    return u < v ? id(u, v) : id(v, u);
  }

  [[nodiscard]] index_t count() const {
    return static_cast<index_t>(endpoints.size());
  }

  const Adjacency* a_;
  std::vector<index_t> entry_edge; ///< per CSR entry → undirected edge id
  std::vector<std::pair<index_t, index_t>> endpoints;
};

} // namespace

std::vector<std::pair<index_t, index_t>> WingDecomposition::wing_edges(
    count_t k) const {
  std::vector<std::pair<index_t, index_t>> out;
  for (index_t i = 0; i < wing.nrows(); ++i) {
    const auto cols = wing.row_cols(i);
    const auto vals = wing.row_vals(i);
    for (std::size_t e = 0; e < cols.size(); ++e) {
      if (i < cols[e] && vals[e] >= k) out.emplace_back(i, cols[e]);
    }
  }
  return out;
}

WingDecomposition wing_decomposition(const Adjacency& a) {
  require_bipartite_simple(a, "wing_decomposition");
  metrics::KernelScope scope("graph/wing_decomposition");
  const EdgeIndex ei(a);
  const index_t m = ei.count();

  // Initial support = per-edge butterfly counts.  Each undirected edge id
  // is written exactly once (from its i < j endpoint), so the scatter is
  // race-free.
  std::vector<count_t> support(static_cast<std::size_t>(m), 0);
  {
    const auto sq = edge_butterflies(a);
    parallel_for_dynamic(0, a.nrows(), [&](index_t i) {
      const auto cols = sq.row_cols(i);
      const auto vals = sq.row_vals(i);
      for (std::size_t e = 0; e < cols.size(); ++e) {
        if (i < cols[e]) {
          support[static_cast<std::size_t>(ei.id(i, cols[e]))] = vals[e];
        }
      }
    });
  }

  std::vector<char> alive(static_cast<std::size_t>(m), 1);
  std::vector<count_t> wing_num(static_cast<std::size_t>(m), 0);

  // Min-heap with lazy deletion: (support, edge id).
  using Entry = std::pair<count_t, index_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (index_t e = 0; e < m; ++e) {
    heap.emplace(support[static_cast<std::size_t>(e)], e);
  }

  count_t level = 0;
  while (!heap.empty()) {
    const auto [s, e] = heap.top();
    heap.pop();
    if (!alive[static_cast<std::size_t>(e)] ||
        s != support[static_cast<std::size_t>(e)]) {
      continue; // stale heap entry
    }
    level = std::max(level, s);
    wing_num[static_cast<std::size_t>(e)] = level;
    alive[static_cast<std::size_t>(e)] = 0;

    // Enumerate alive butterflies through e = (u,v) and decrement the
    // other three edges of each.
    const auto [u, v] = ei.endpoints[static_cast<std::size_t>(e)];
    const auto decrement = [&](index_t edge_id) {
      auto& sup = support[static_cast<std::size_t>(edge_id)];
      if (sup > 0) {
        --sup;
        heap.emplace(sup, edge_id);
      }
    };
    for (const index_t up : a.row_cols(v)) {
      if (up == u) continue;
      const index_t e_upv = ei.id_any(up, v);
      if (!alive[static_cast<std::size_t>(e_upv)]) continue;
      // Common neighbors of u and u' (sorted merge), excluding v.
      const auto nu = a.row_cols(u);
      const auto nup = a.row_cols(up);
      std::size_t x = 0, y = 0;
      while (x < nu.size() && y < nup.size()) {
        if (nu[x] < nup[y]) {
          ++x;
        } else if (nup[y] < nu[x]) {
          ++y;
        } else {
          const index_t w = nu[x];
          ++x;
          ++y;
          if (w == v) continue;
          const index_t e_uw = ei.id_any(u, w);
          const index_t e_upw = ei.id_any(up, w);
          if (!alive[static_cast<std::size_t>(e_uw)] ||
              !alive[static_cast<std::size_t>(e_upw)]) {
            continue;
          }
          decrement(e_upv);
          decrement(e_uw);
          decrement(e_upw);
        }
      }
    }
  }

  // Assemble the result matrix with a's structure.
  WingDecomposition out;
  std::vector<count_t> vals(static_cast<std::size_t>(a.nnz()));
  for (std::size_t k = 0; k < vals.size(); ++k) {
    vals[k] = wing_num[static_cast<std::size_t>(ei.entry_edge[k])];
  }
  out.wing = grb::Csr<count_t>(a.nrows(), a.ncols(), a.row_ptr(),
                               a.col_idx(), std::move(vals));
  for (const count_t w : out.wing.vals()) {
    out.max_wing = std::max(out.max_wing, w);
  }
  return out;
}

WingDecomposition wing_decomposition_naive(const Adjacency& a) {
  require_bipartite_simple(a, "wing_decomposition_naive");
  KRONLAB_REQUIRE(a.nrows() <= 256, "naive decomposition is for tiny graphs");

  // wing(e) = largest k such that e survives iterated deletion of edges
  // with in-subgraph support < k.
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t i = 0; i < a.nrows(); ++i) {
    for (const index_t j : a.row_cols(i)) {
      if (i < j) edges.emplace_back(i, j);
    }
  }
  std::vector<count_t> wing_num(edges.size(), 0);
  for (count_t k = 1;; ++k) {
    // Iterate deletion at threshold k over the surviving subgraph.
    std::vector<std::pair<index_t, index_t>> current;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (wing_num[e] == k - 1) current.push_back(edges[e]);
    }
    if (current.empty()) break;
    bool changed = true;
    while (changed && !current.empty()) {
      const auto sub = from_undirected_edges(a.nrows(), current);
      const auto sq = edge_butterflies(sub);
      std::vector<std::pair<index_t, index_t>> next;
      for (const auto& [i, j] : current) {
        if (sq.at(i, j) >= k) next.emplace_back(i, j);
      }
      changed = next.size() != current.size();
      current = std::move(next);
    }
    if (current.empty()) break;
    // Survivors have wing number >= k.
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (wing_num[e] != k - 1) continue;
      for (const auto& [i, j] : current) {
        if (edges[e] == std::make_pair(i, j)) {
          wing_num[e] = k;
          break;
        }
      }
    }
  }

  WingDecomposition out;
  grb::Coo<count_t> coo(a.nrows(), a.ncols());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    coo.push(edges[e].first, edges[e].second, wing_num[e] + 1);
    coo.push(edges[e].second, edges[e].first, wing_num[e] + 1);
  }
  // +1 shift keeps zero wings from being dropped by from_coo; undo it.
  out.wing = grb::Csr<count_t>::from_coo(coo);
  for (auto& v : out.wing.vals()) --v;
  for (const count_t w : out.wing.vals()) {
    out.max_wing = std::max(out.max_wing, w);
  }
  return out;
}

} // namespace kronlab::graph
