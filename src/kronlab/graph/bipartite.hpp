// kronlab/graph/bipartite.hpp
//
// Bipartiteness testing and two-mode structure (Def. 7).

#pragma once

#include <optional>
#include <vector>

#include "kronlab/graph/graph.hpp"

namespace kronlab::graph {

/// A two-coloring of a bipartite graph: side[v] ∈ {0, 1}; side 0 is 𝒰,
/// side 1 is 𝒲.  Isolated vertices are assigned side 0.
struct Bipartition {
  std::vector<int> side;

  [[nodiscard]] index_t size_u() const;
  [[nodiscard]] index_t size_w() const;

  /// Vertex ids of each side.
  [[nodiscard]] std::vector<index_t> u_vertices() const;
  [[nodiscard]] std::vector<index_t> w_vertices() const;
};

/// Attempt to 2-color `a`; nullopt iff the graph has an odd cycle
/// (including any self loop).
std::optional<Bipartition> two_color(const Adjacency& a);

/// True iff the graph is bipartite.
bool is_bipartite(const Adjacency& a);

/// Build the block anti-diagonal adjacency of Def. 7 from a two-mode
/// biadjacency X (|U|×|W|): vertices [0,|U|) are 𝒰, [|U|, |U|+|W|) are 𝒲.
Adjacency bipartite_from_biadjacency(const grb::Csr<count_t>& x);

/// Extract the |U|×|W| biadjacency block X_A from a bipartite adjacency
/// ordered with 𝒰 before 𝒲 (throws if edges exist within a side).
grb::Csr<count_t> biadjacency_block(const Adjacency& a, index_t n_u);

} // namespace kronlab::graph
