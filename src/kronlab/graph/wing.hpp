// kronlab/graph/wing.hpp
//
// k-wing (bitruss) decomposition of bipartite graphs — Sarıyüce–Pinar [4]
// and Zou [17], the butterfly generalization of truss decomposition.
//
// The k-wing of a bipartite graph is the maximal subgraph in which every
// edge participates in at least k butterflies *within the subgraph*.  The
// wing number of an edge is the largest k whose k-wing contains it.
//
// The paper's §I/§III-B observation: because Kronecker products sprout
// 4-cycles even where the factors have none (Remark 1), one cannot plant a
// ground-truth wing decomposition the way triangle/truss ground truth is
// planted in the non-bipartite setting.  kronlab ships this decomposition
// so that claim is demonstrable (see bench_wing) and so the generator can
// still be used for *validated* wing computations on graphs small enough
// to verify.
//
// Algorithm: standard support peeling.  Compute per-edge butterfly support,
// then repeatedly remove a minimum-support edge, enumerating the
// butterflies it participates in and decrementing the other three edges of
// each.  Bucketed priority queue gives O(Σ butterflies-touched + |E| log)
// style behavior; intended for factor-scale and validation-scale graphs.

#pragma once

#include <vector>

#include "kronlab/graph/graph.hpp"

namespace kronlab::graph {

/// Result of the wing (bitruss) decomposition.
struct WingDecomposition {
  /// Wing number per stored CSR entry of the input adjacency (symmetric:
  /// entry (i,j) and (j,i) carry the same number).
  grb::Csr<count_t> wing;
  /// Largest k with a non-empty k-wing.
  count_t max_wing = 0;

  /// Edges (as (i,j), i<j) of the k-wing subgraph.
  [[nodiscard]] std::vector<std::pair<index_t, index_t>> wing_edges(
      count_t k) const;
};

/// Peeling decomposition.  Requires a loop-free undirected bipartite
/// adjacency.
WingDecomposition wing_decomposition(const Adjacency& a);

/// Independent O(|E|²·...) oracle for tiny graphs: iteratively delete all
/// edges with in-subgraph support < k until fixpoint, for each k.
WingDecomposition wing_decomposition_naive(const Adjacency& a);

} // namespace kronlab::graph
