// kronlab/graph/approx_butterflies.hpp
//
// Sampling-based approximate global 4-cycle counting.
//
// §I motivates the generators as validation instruments "for both direct
// and approximate computation techniques".  These are the standard
// estimator families an approximate butterfly-counting paper would
// benchmark, implemented so kronlab's ground truth can score them:
//
//  * vertex sampling:  E[s_v · n / 4] over uniform v — unbiased, variance
//    driven by the skew of the per-vertex counts;
//  * edge sampling:    E[◇_e · m / 4] over uniform edges e — unbiased,
//    usually lower variance on heavy-tail graphs;
//  * wedge sampling:   sample a uniform wedge (path x–c–y), test whether a
//    uniformly chosen pair of its endpoints' incident... classic
//    formulation: a wedge closes into W/(choose 2) squares; we estimate
//    the wedge-closure probability and rescale by the exact wedge count
//    (Σ_v C(d_v, 2)), which is O(n) to compute.
//
// All estimators consume a caller-provided Rng so runs are reproducible.

#pragma once

#include "kronlab/common/random.hpp"
#include "kronlab/graph/graph.hpp"

namespace kronlab::graph {

/// Result of one estimation run.
struct ButterflyEstimate {
  double estimate = 0.0;
  index_t samples = 0;
};

/// Uniform-vertex estimator: mean of s_v over sampled vertices, rescaled
/// by n/4.  Exact per-vertex counts are computed lazily per sample via
/// wedge counting around the vertex (O(Σ_{j∈N(v)} d_j) per sample).
ButterflyEstimate approx_butterflies_vertex(const Adjacency& a,
                                            index_t samples, Rng& rng);

/// Uniform-edge estimator: mean of ◇_e over sampled edges, rescaled by
/// m/4 (m = undirected edge count).
ButterflyEstimate approx_butterflies_edge(const Adjacency& a,
                                          index_t samples, Rng& rng);

/// Wedge-closure estimator: W = Σ_v C(d_v,2) wedges exist; a uniform
/// wedge (x, c, y) closes iff x and y share a neighbor besides c; each
/// square contains exactly 4 wedges, so #C4 = W·Pr[closure]/4 with
/// Pr[closure] estimated as the fraction of sampled wedges whose endpoint
/// pair has a second common neighbor... precisely: the number of squares
/// through a wedge is (common(x,y) − 1); #C4 = W·E[common−1]/4.
ButterflyEstimate approx_butterflies_wedge(const Adjacency& a,
                                           index_t samples, Rng& rng);

} // namespace kronlab::graph
