// kronlab/graph/triangles.hpp
//
// Direct (combinatorial) triangle counting — the non-bipartite higher-order
// statistic.  Used to validate bipartiteness (bipartite graphs must count
// zero) and to characterize the non-bipartite factor A of Assumption 1(i).

#pragma once

#include "kronlab/graph/graph.hpp"

namespace kronlab::graph {

/// Per-vertex triangle participation t_i, by sorted neighbor-list
/// intersection over each edge.  Requires a loop-free undirected adjacency.
grb::Vector<count_t> vertex_triangles(const Adjacency& a);

/// Per-edge triangle counts Δ_ij (number of common neighbors of i and j).
grb::Csr<count_t> edge_triangles(const Adjacency& a);

/// Global triangle count (= Σ t_i / 3).
count_t global_triangles(const Adjacency& a);

} // namespace kronlab::graph
