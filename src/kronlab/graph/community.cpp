#include "kronlab/graph/community.hpp"

#include "kronlab/common/error.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab::graph {

grb::Vector<count_t> BipartiteSubset::indicator(index_t n) const {
  grb::Vector<count_t> ind(n, 0);
  for (const index_t v : r) {
    KRONLAB_REQUIRE(v >= 0 && v < n, "subset member out of range");
    ind[v] = 1;
  }
  for (const index_t v : t) {
    KRONLAB_REQUIRE(v >= 0 && v < n, "subset member out of range");
    KRONLAB_REQUIRE(ind[v] == 0, "subset member listed on both sides");
    ind[v] = 1;
  }
  return ind;
}

count_t internal_edges(const Adjacency& a,
                       const grb::Vector<count_t>& ind) {
  return grb::dot(ind, grb::mxv(a, ind)) / 2;
}

count_t external_edges(const Adjacency& a,
                       const grb::Vector<count_t>& ind) {
  grb::Vector<count_t> comp(ind.size());
  for (index_t i = 0; i < ind.size(); ++i) comp[i] = 1 - ind[i];
  return grb::dot(ind, grb::mxv(a, comp));
}

CommunityStats community_stats(const Adjacency& a, const Bipartition& part,
                               const BipartiteSubset& s) {
  KRONLAB_REQUIRE(static_cast<index_t>(part.side.size()) == a.nrows(),
                  "bipartition size mismatch");
  for (const index_t v : s.r) {
    KRONLAB_REQUIRE(part.side[static_cast<std::size_t>(v)] == 0,
                    "R member is not on side U");
  }
  for (const index_t v : s.t) {
    KRONLAB_REQUIRE(part.side[static_cast<std::size_t>(v)] == 1,
                    "T member is not on side W");
  }

  const auto ind = s.indicator(a.nrows());
  CommunityStats st;
  st.m_in = internal_edges(a, ind);
  st.m_out = external_edges(a, ind);

  const auto nr = static_cast<double>(s.r.size());
  const auto nt = static_cast<double>(s.t.size());
  const auto nu = static_cast<double>(part.size_u());
  const auto nw = static_cast<double>(part.size_w());

  const double denom_in = nr * nt;
  st.rho_in = denom_in > 0 ? static_cast<double>(st.m_in) / denom_in : 0.0;
  const double denom_out = nr * nw + nu * nt - 2.0 * nr * nt;
  st.rho_out =
      denom_out > 0 ? static_cast<double>(st.m_out) / denom_out : 0.0;
  return st;
}

} // namespace kronlab::graph
