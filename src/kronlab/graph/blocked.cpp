#include "kronlab/graph/blocked.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::graph {

namespace {

void require_simple(const Adjacency& a, const char* where) {
  KRONLAB_REQUIRE(a.nrows() == a.ncols(), "adjacency must be square");
  if (!grb::has_no_self_loops(a)) {
    throw domain_error(std::string(where) +
                       ": adjacency must have no self loops");
  }
}

/// Blocked wedge accumulator: dense 32-bit counters over relabeled ids
/// [0, block), open-addressing hash for the tail.  A wedge count is at
/// most min(d_i, d_k) < n, so 32 bits suffice for any factor this library
/// materializes (products beyond 2^32 vertices are never counted
/// directly).
class WedgeAccumulator {
public:
  explicit WedgeAccumulator(index_t n)
      : block_(std::min(n, wedge_block_entries)),
        dense_(static_cast<std::size_t>(block_), 0) {}

  void add(index_t k) {
    if (k < block_) {
      auto& slot = dense_[static_cast<std::size_t>(k)];
      if (slot == 0) touched_dense_.push_back(k);
      ++slot;
    } else {
      add_tail(k);
    }
  }

  [[nodiscard]] count_t get(index_t k) const {
    if (k < block_) {
      return static_cast<count_t>(dense_[static_cast<std::size_t>(k)]);
    }
    if (tail_keys_.empty()) return 0;
    const std::size_t mask = tail_keys_.size() - 1;
    std::size_t slot = hash_of(k) & mask;
    while (tail_keys_[slot] != empty_key) {
      if (tail_keys_[slot] == k) {
        return static_cast<count_t>(tail_vals_[slot]);
      }
      slot = (slot + 1) & mask;
    }
    return 0;
  }

  /// Visit every nonzero (endpoint, count) pair, then zero the table.
  template <typename Use>
  void drain(Use&& use) {
    for (const index_t k : touched_dense_) {
      auto& slot = dense_[static_cast<std::size_t>(k)];
      use(k, static_cast<count_t>(slot));
      slot = 0;
    }
    touched_dense_.clear();
    for (const std::size_t s : touched_tail_) {
      use(tail_keys_[s], static_cast<count_t>(tail_vals_[s]));
      tail_keys_[s] = empty_key;
      tail_vals_[s] = 0;
    }
    touched_tail_.clear();
  }

  /// Zero the table without visiting (edge kernel's per-row reset).
  void clear() {
    drain([](index_t, count_t) {});
  }

  [[nodiscard]] bool empty() const {
    return touched_dense_.empty() && touched_tail_.empty();
  }

private:
  static constexpr index_t empty_key = -1;

  [[nodiscard]] static std::size_t hash_of(index_t k) {
    // Fibonacci hashing; keys are ≥ block_ so low bits alone are biased.
    return static_cast<std::size_t>(
        static_cast<std::uint64_t>(k) * 0x9e3779b97f4a7c15ull >> 32);
  }

  void add_tail(index_t k) {
    if (tail_keys_.empty()) rehash(1024);
    // Grow at 2/3 load so probe chains stay short.
    if (3 * (touched_tail_.size() + 1) > 2 * tail_keys_.size()) {
      rehash(tail_keys_.size() * 2);
    }
    const std::size_t mask = tail_keys_.size() - 1;
    std::size_t slot = hash_of(k) & mask;
    while (tail_keys_[slot] != empty_key && tail_keys_[slot] != k) {
      slot = (slot + 1) & mask;
    }
    if (tail_keys_[slot] == empty_key) {
      tail_keys_[slot] = k;
      tail_vals_[slot] = 0;
      touched_tail_.push_back(slot);
    }
    ++tail_vals_[slot];
  }

  void rehash(std::size_t capacity) {
    std::vector<index_t> old_keys = std::move(tail_keys_);
    std::vector<std::uint32_t> old_vals = std::move(tail_vals_);
    std::vector<std::size_t> old_touched = std::move(touched_tail_);
    tail_keys_.assign(capacity, empty_key);
    tail_vals_.assign(capacity, 0);
    touched_tail_.clear();
    touched_tail_.reserve(capacity);
    const std::size_t mask = capacity - 1;
    for (const std::size_t s : old_touched) {
      std::size_t slot = hash_of(old_keys[s]) & mask;
      while (tail_keys_[slot] != empty_key) slot = (slot + 1) & mask;
      tail_keys_[slot] = old_keys[s];
      tail_vals_[slot] = old_vals[s];
      touched_tail_.push_back(slot);
    }
  }

  index_t block_;
  std::vector<std::uint32_t> dense_;  ///< counts for ids < block_
  std::vector<index_t> touched_dense_;
  std::vector<index_t> tail_keys_;    ///< open addressing, power-of-two
  std::vector<std::uint32_t> tail_vals_;
  std::vector<std::size_t> touched_tail_; ///< occupied slots, for drain
};

} // namespace

DegreeOrder::DegreeOrder(const Adjacency& a, bool with_entry_map) {
  metrics::KernelScope scope("graph/degree_order");
  const index_t n = a.nrows();
  orig.resize(static_cast<std::size_t>(n));
  std::iota(orig.begin(), orig.end(), index_t{0});
  std::sort(orig.begin(), orig.end(), [&](index_t x, index_t y) {
    const offset_t dx = a.row_degree(x);
    const offset_t dy = a.row_degree(y);
    return dx != dy ? dx > dy : x < y;
  });
  rank.resize(static_cast<std::size_t>(n));
  for (index_t r = 0; r < n; ++r) {
    rank[static_cast<std::size_t>(orig[static_cast<std::size_t>(r)])] = r;
  }

  std::vector<offset_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t r = 0; r < n; ++r) {
    row_ptr[static_cast<std::size_t>(r) + 1] =
        a.row_degree(orig[static_cast<std::size_t>(r)]);
  }
  for (index_t r = 0; r < n; ++r) {
    row_ptr[static_cast<std::size_t>(r) + 1] +=
        row_ptr[static_cast<std::size_t>(r)];
  }
  const auto nnz = static_cast<std::size_t>(a.nnz());
  std::vector<index_t> col_idx(nnz);

  // Rows of the relabeled matrix are built sorted with a counting-sort
  // sweep instead of per-row comparison sorts: walking target ranks c in
  // ascending order and appending c to every row rank[v], v ∈ N(orig[c]),
  // emits each relabeled row's columns in ascending order — O(nnz), no
  // sort.
  std::vector<offset_t> fill(row_ptr.begin(), row_ptr.end() - 1);
  if (!with_entry_map) {
    for (index_t c = 0; c < n; ++c) {
      for (const index_t v : a.row_cols(orig[static_cast<std::size_t>(c)])) {
        col_idx[static_cast<std::size_t>(
            fill[static_cast<std::size_t>(
                rank[static_cast<std::size_t>(v)])]++)] = c;
      }
    }
  } else {
    // The relabeled entry written for target rank c into row rank[v] is
    // original entry (v, orig[c]) — the *mirror* of the entry (orig[c], v)
    // being walked.  The adjacency is structurally symmetric, so mirror
    // offsets come from one id-order cursor sweep (row v's entries are
    // met in ascending u as u sweeps ascending), and entry_map needs no
    // search or sort either.
    entry_map.resize(nnz);
    std::vector<offset_t> mirror(nnz);
    const auto& arp = a.row_ptr();
    std::vector<offset_t> cursor(arp.begin(), arp.end() - 1);
    for (index_t u = 0; u < n; ++u) {
      const auto cols = a.row_cols(u);
      const auto base = static_cast<std::size_t>(arp[static_cast<std::size_t>(u)]);
      for (std::size_t e = 0; e < cols.size(); ++e) {
        mirror[base + e] = cursor[static_cast<std::size_t>(cols[e])]++;
      }
    }
    for (index_t c = 0; c < n; ++c) {
      const index_t u = orig[static_cast<std::size_t>(c)];
      const auto cols = a.row_cols(u);
      const auto base = static_cast<std::size_t>(arp[static_cast<std::size_t>(u)]);
      for (std::size_t e = 0; e < cols.size(); ++e) {
        const auto q = static_cast<std::size_t>(
            fill[static_cast<std::size_t>(
                rank[static_cast<std::size_t>(cols[e])])]++);
        col_idx[q] = c;
        entry_map[q] = mirror[base + e];
      }
    }
  }
  relabeled =
      Adjacency(n, n, std::move(row_ptr), std::move(col_idx),
                std::vector<count_t>(static_cast<std::size_t>(a.nnz()), 1));
}

grb::Vector<count_t> vertex_butterflies_blocked(const Adjacency& a) {
  require_simple(a, "vertex_butterflies_blocked");
  metrics::KernelScope scope("graph/vertex_butterflies_blocked");
  const index_t n = a.nrows();
  grb::Vector<count_t> out(n, 0);
  if (n == 0) return out;
  const DegreeOrder ord(a);
  const Adjacency& g = ord.relabeled;

  // Per-worker partial per-vertex sums (in rank space): each unordered
  // endpoint pair {i, k} is visited once, from the higher-rank (lower
  // degree) side, and credits both endpoints.
  struct Scratch {
    WedgeAccumulator acc;
    std::vector<count_t>* partial;
  };
  std::vector<std::vector<count_t>> partials(global_pool().size());
  parallel_for_range_dynamic_scratch(
      0, n,
      [&](std::size_t id) {
        partials[id].assign(static_cast<std::size_t>(n), 0);
        return Scratch{WedgeAccumulator(n), &partials[id]};
      },
      [&](Scratch& ws, index_t lo, index_t hi) {
        auto& partial = *ws.partial;
        for (index_t i = lo; i < hi; ++i) {
          for (const index_t j : g.row_cols(i)) {
            for (const index_t k : g.row_cols(j)) {
              if (k >= i) break; // row sorted: rest is higher-rank pairs
              ws.acc.add(k);
            }
          }
          count_t own = 0;
          ws.acc.drain([&](index_t k, count_t c) {
            const count_t pairs = c * (c - 1) / 2;
            own += pairs;
            partial[static_cast<std::size_t>(k)] += pairs;
          });
          partial[static_cast<std::size_t>(i)] += own;
        }
      });

  parallel_for_dynamic(0, n, [&](index_t r) {
    count_t acc = 0;
    for (const auto& p : partials) {
      if (!p.empty()) acc += p[static_cast<std::size_t>(r)];
    }
    out[ord.orig[static_cast<std::size_t>(r)]] = acc;
  });
  return out;
}

grb::Csr<count_t> edge_butterflies_blocked(const Adjacency& a) {
  require_simple(a, "edge_butterflies_blocked");
  metrics::KernelScope scope("graph/edge_butterflies_blocked");
  grb::Csr<count_t> out = a;
  if (a.nrows() == 0 || a.nnz() == 0) return out;
  const DegreeOrder ord(a, /*with_entry_map=*/true);
  const Adjacency& g = ord.relabeled;
  const auto& grp = g.row_ptr();
  const index_t n = g.nrows();

  // Phase 1: rank-halved pair enumeration, the same work-halving the
  // vertex kernel uses.  Each endpoint pair {i, k} is materialized once,
  // from its higher-rank side i: pass A builds cnt[k] = |N(i) ∩ N(k)|
  // scanning only the sorted k < i prefix of each N(j) (j ranges over all
  // of N(i), so the counts are the full intersections), then pass B
  // replays the identical — now cache-warm — wedge prefix and credits the
  // (c − 1) butterflies pair {i, k} contributes through wedge i–j–k to
  // both of the wedge's edges: entry (i, j) of row i and entry (j, k) of
  // row j, stored-entry offsets known directly from the row walks.  Each
  // undirected edge thus accumulates across its two mirror slots — phase 2
  // folds them.  Row j is shared across many i, so workers accumulate
  // into private images of rvals, reduced once at the end.
  std::vector<count_t> rvals(static_cast<std::size_t>(g.nnz()), 0);
  {
    metrics::KernelScope phase1("graph/edge_blocked_phase1");
    struct Scratch {
      WedgeAccumulator acc;
      std::vector<count_t>* rpart;
    };
    std::vector<std::vector<count_t>> partials(global_pool().size());
    parallel_for_range_dynamic_scratch(
        0, n,
        [&](std::size_t id) {
          partials[id].assign(static_cast<std::size_t>(g.nnz()), 0);
          return Scratch{WedgeAccumulator(n), &partials[id]};
        },
        [&](Scratch& ws, index_t lo, index_t hi) {
          auto& rpart = *ws.rpart;
          for (index_t i = lo; i < hi; ++i) {
            const auto cols = g.row_cols(i);
            for (const index_t j : cols) {
              for (const index_t k : g.row_cols(j)) {
                if (k >= i) break; // sorted row: rest pairs with ranks ≥ i
                ws.acc.add(k);
              }
            }
            if (ws.acc.empty()) continue; // no pair has i as upper end
            const auto base = static_cast<std::size_t>(grp[i]);
            for (std::size_t e = 0; e < cols.size(); ++e) {
              const index_t j = cols[e];
              const auto jcols = g.row_cols(j);
              const auto jbase = static_cast<std::size_t>(grp[j]);
              count_t own = 0;
              for (std::size_t f = 0; f < jcols.size(); ++f) {
                const index_t k = jcols[f];
                if (k >= i) break;
                // k was added in pass A through this very wedge, so
                // cnt[k] ≥ 1 and the credit is never negative.
                const count_t c = ws.acc.get(k) - 1;
                own += c;
                rpart[jbase + f] += c;
              }
              rpart[base + e] += own;
            }
            ws.acc.clear();
          }
        });
    parallel_for_range_dynamic(
        0, static_cast<index_t>(g.nnz()), [&](index_t lo, index_t hi) {
          for (const auto& p : partials) {
            if (p.empty()) continue;
            for (index_t q = lo; q < hi; ++q) {
              rvals[static_cast<std::size_t>(q)] +=
                  p[static_cast<std::size_t>(q)];
            }
          }
        });
  }

  // Phase 2: fold each edge's two mirror slots with one O(nnz) cursor
  // sweep — for each row i, upper entries (i, j) appear in ascending j,
  // and sweeping rows j in ascending order visits each i's mirrors in the
  // same order, so a per-row cursor pairs them without searching.
  {
    metrics::KernelScope phase2("graph/edge_blocked_phase2");
    std::vector<offset_t> cursor(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      const auto cols = g.row_cols(i);
      const auto it = std::upper_bound(cols.begin(), cols.end(), i);
      cursor[static_cast<std::size_t>(i)] =
          grp[static_cast<std::size_t>(i)] +
          static_cast<offset_t>(it - cols.begin());
    }
    for (index_t j = 0; j < n; ++j) {
      const auto cols = g.row_cols(j);
      const auto base = static_cast<std::size_t>(grp[j]);
      for (std::size_t e = 0; e < cols.size(); ++e) {
        const index_t i = cols[e];
        if (i >= j) break;
        const auto mirror = static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(i)]++);
        // Every 4-cycle through edge {i, j} was credited twice in phase
        // 1 — once per diagonal pair it contains — with the two credits
        // split across the mirror slots, so the folded sum is exactly
        // 2·◇_ij (always even).
        const count_t v = (rvals[base + e] + rvals[mirror]) / 2;
        rvals[base + e] = v;
        rvals[mirror] = v;
      }
    }
  }

  // Phase 3: scatter rank-space values back to the original structure.
  metrics::KernelScope phase3("graph/edge_blocked_phase3");
  auto& vals = out.vals();
  parallel_for_range_dynamic(
      0, static_cast<index_t>(g.nnz()), [&](index_t lo, index_t hi) {
        for (index_t p = lo; p < hi; ++p) {
          vals[static_cast<std::size_t>(
              ord.entry_map[static_cast<std::size_t>(p)])] =
              rvals[static_cast<std::size_t>(p)];
        }
      });
  return out;
}

} // namespace kronlab::graph
