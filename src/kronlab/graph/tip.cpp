#include "kronlab/graph/tip.hpp"

#include <algorithm>
#include <queue>

#include "kronlab/common/error.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/obs/trace.hpp"

namespace kronlab::graph {

namespace {

void require_valid(const Adjacency& a, const Bipartition& part, int side,
                   const char* where) {
  require_undirected(a, where);
  if (!grb::has_no_self_loops(a) || !is_bipartite(a)) {
    throw domain_error(std::string(where) +
                       ": requires a loop-free bipartite graph");
  }
  KRONLAB_REQUIRE(static_cast<index_t>(part.side.size()) == a.nrows(),
                  "bipartition size mismatch");
  KRONLAB_REQUIRE(side == 0 || side == 1, "side must be 0 or 1");
  for (index_t i = 0; i < a.nrows(); ++i) {
    for (const index_t j : a.row_cols(i)) {
      KRONLAB_REQUIRE(part.side[static_cast<std::size_t>(i)] !=
                          part.side[static_cast<std::size_t>(j)],
                      "bipartition does not two-color the graph");
    }
  }
}

/// Butterflies shared between alive same-side vertices v and k:
/// C(|N(v) ∩ N(k)|, 2), enumerated through v's wedge table.
template <typename Use>
void alive_wedge_table(const Adjacency& a, const std::vector<char>& alive,
                       index_t v, std::vector<count_t>& cnt,
                       std::vector<index_t>& touched, Use&& use) {
  touched.clear();
  for (const index_t j : a.row_cols(v)) {
    for (const index_t k : a.row_cols(j)) {
      if (k == v || !alive[static_cast<std::size_t>(k)]) continue;
      if (cnt[static_cast<std::size_t>(k)] == 0) touched.push_back(k);
      ++cnt[static_cast<std::size_t>(k)];
    }
  }
  use(cnt, touched);
  for (const index_t k : touched) cnt[static_cast<std::size_t>(k)] = 0;
}

} // namespace

TipDecomposition tip_decomposition(const Adjacency& a,
                                   const Bipartition& part, int side) {
  KRONLAB_TRACE_SPAN("graph", "tip_decomposition");
  require_valid(a, part, side, "tip_decomposition");
  const auto n = static_cast<std::size_t>(a.nrows());

  TipDecomposition out;
  out.tip.assign(n, 0);
  out.peeled_side.assign(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    out.peeled_side[v] = (part.side[v] == side);
  }

  // Initial supports: per-vertex butterfly counts on the peeled side.
  const auto s0 = vertex_butterflies(a);
  std::vector<count_t> support(n, 0);
  std::vector<char> alive(n, 0);
  using Entry = std::pair<count_t, index_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t v = 0; v < n; ++v) {
    if (!out.peeled_side[v]) continue;
    support[v] = s0[static_cast<index_t>(v)];
    alive[v] = 1;
    heap.emplace(support[v], static_cast<index_t>(v));
  }

  std::vector<count_t> cnt(n, 0);
  std::vector<index_t> touched;
  count_t level = 0;
  while (!heap.empty()) {
    const auto [s, v] = heap.top();
    heap.pop();
    if (!alive[static_cast<std::size_t>(v)] ||
        s != support[static_cast<std::size_t>(v)]) {
      continue;
    }
    level = std::max(level, s);
    out.tip[static_cast<std::size_t>(v)] = level;
    alive[static_cast<std::size_t>(v)] = 0;
    alive_wedge_table(a, alive, v, cnt, touched,
                      [&](const std::vector<count_t>& table,
                          const std::vector<index_t>& hit) {
                        for (const index_t k : hit) {
                          const count_t c =
                              table[static_cast<std::size_t>(k)];
                          const count_t shared = c * (c - 1) / 2;
                          if (shared > 0) {
                            auto& sup =
                                support[static_cast<std::size_t>(k)];
                            sup = sup > shared ? sup - shared : 0;
                            heap.emplace(sup, k);
                          }
                        }
                      });
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (out.peeled_side[v]) out.max_tip = std::max(out.max_tip, out.tip[v]);
  }
  return out;
}

TipDecomposition tip_decomposition_naive(const Adjacency& a,
                                         const Bipartition& part,
                                         int side) {
  require_valid(a, part, side, "tip_decomposition_naive");
  KRONLAB_REQUIRE(a.nrows() <= 256, "naive decomposition is for tiny graphs");
  const auto n = static_cast<std::size_t>(a.nrows());

  TipDecomposition out;
  out.tip.assign(n, 0);
  out.peeled_side.assign(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    out.peeled_side[v] = (part.side[v] == side);
  }

  // Survivors at level k: iterate deletion of peeled-side vertices with
  // in-subgraph support < k.
  for (count_t k = 1;; ++k) {
    std::vector<char> alive(n, 0);
    bool any = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (out.peeled_side[v] && out.tip[v] == k - 1) {
        alive[v] = 1;
        any = true;
      }
    }
    if (!any) break;
    bool changed = true;
    while (changed) {
      changed = false;
      // Rebuild the subgraph induced by alive peeled-side vertices plus
      // the full other side.
      std::vector<std::pair<index_t, index_t>> edges;
      for (index_t i = 0; i < a.nrows(); ++i) {
        if (out.peeled_side[static_cast<std::size_t>(i)] &&
            !alive[static_cast<std::size_t>(i)]) {
          continue;
        }
        for (const index_t j : a.row_cols(i)) {
          if (i >= j) continue;
          if (out.peeled_side[static_cast<std::size_t>(j)] &&
              !alive[static_cast<std::size_t>(j)]) {
            continue;
          }
          edges.emplace_back(i, j);
        }
      }
      const auto sub = from_undirected_edges(a.nrows(), edges);
      const auto s = vertex_butterflies(sub);
      for (std::size_t v = 0; v < n; ++v) {
        if (alive[v] && s[static_cast<index_t>(v)] < k) {
          alive[v] = 0;
          changed = true;
        }
      }
    }
    bool survivor = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (alive[v]) {
        out.tip[v] = k;
        survivor = true;
      }
    }
    if (!survivor) break;
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (out.peeled_side[v]) out.max_tip = std::max(out.max_tip, out.tip[v]);
  }
  return out;
}

} // namespace kronlab::graph
