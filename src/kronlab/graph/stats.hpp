// kronlab/graph/stats.hpp
//
// Degree-distribution and degree-binned statistics used by the benchmark
// harnesses (Fig. 5 plots degree vs 4-cycle participation on log-log axes).

#pragma once

#include <map>
#include <vector>

#include "kronlab/graph/graph.hpp"

namespace kronlab::graph {

/// Histogram: degree -> number of vertices with that degree.
std::map<count_t, index_t> degree_histogram(const Adjacency& a);

/// One point of a degree-binned series.
struct DegreeBin {
  count_t degree = 0;   ///< representative degree of the bin
  index_t vertices = 0; ///< vertices in the bin
  double mean = 0.0;    ///< mean of `values` over the bin
  count_t min = 0;      ///< min of `values` over the bin
  count_t max = 0;      ///< max of `values` over the bin
};

/// Bin `values[v]` by exact degree — the (degree, 4-cycle count) scatter of
/// Fig. 5, collapsed to per-degree summary rows so benches can print it.
std::vector<DegreeBin> degree_binned(const Adjacency& a,
                                     const grb::Vector<count_t>& values);

/// Heavy-tail summary used in bench tables.
struct DegreeSummary {
  count_t max_degree = 0;
  double mean_degree = 0.0;
  count_t median_degree = 0;
  double gini = 0.0; ///< Gini coefficient of the degree sequence (skew)
};

DegreeSummary degree_summary(const Adjacency& a);

} // namespace kronlab::graph
