// kronlab/graph/butterflies.hpp
//
// Direct (combinatorial) 4-cycle — "square", "butterfly" — counting.
//
// These counters are deliberately formula-independent: they enumerate
// wedges, so they serve as the ground-truth *validators* for the Kronecker
// formulas of §III-B (and conversely, the formulas validate them — that
// mutual check is the paper's use case).
//
// Algorithm (wedge counting): for a vertex i, let cnt[k] = |N(i) ∩ N(k)| be
// the number of wedges i–·–k for every second-neighbor k.  Then
//   s_i = Σ_{k≠i} C(cnt[k], 2)          (vertex participation, Def. 8)
//   ◇_ij = Σ_{k∈N(j)\{i}} (cnt[k] − 1)  (edge participation, Def. 9)
//   #C4 = ¼ Σ_i Σ_{k≠i} C(cnt[k], 2)    (each square has two diagonals,
//                                        each seen from both endpoints)
// Work is O(Σ_i Σ_{j∈N(i)} d_j) = O(Σ_j d_j²), the cost the paper quotes
// for the shortened-BFS-into-second-neighborhood approach.

#pragma once

#include "kronlab/graph/graph.hpp"

namespace kronlab::graph {

/// Per-vertex 4-cycle participation s (Def. 8).  Dispatches to the
/// degree-ordered blocked kernel (graph/blocked.hpp); bit-identical to
/// vertex_butterflies_reference.  Requires an undirected, loop-free
/// adjacency.
grb::Vector<count_t> vertex_butterflies(const Adjacency& a);

/// Per-edge 4-cycle participation ◇ (Def. 9), same structure as `a`.
/// Dispatches to the degree-ordered blocked kernel.
grb::Csr<count_t> edge_butterflies(const Adjacency& a);

/// Reference wedge-table kernel (dense n-sized accumulator in original id
/// order).  Retained as the cross-check partner for the blocked kernels —
/// the randomized suite asserts bit-for-bit agreement.
grb::Vector<count_t> vertex_butterflies_reference(const Adjacency& a);

/// Reference per-edge wedge-table kernel; cross-check partner of
/// edge_butterflies.
grb::Csr<count_t> edge_butterflies_reference(const Adjacency& a);

/// Global number of 4-cycles.
count_t global_butterflies(const Adjacency& a);

/// Brute-force O(n⁴) global count by enumerating ordered 4-tuples — an
/// independent oracle for testing on tiny graphs (n ≲ 64).
count_t global_butterflies_naive(const Adjacency& a);

/// Brute-force per-vertex counts, same regime as global_butterflies_naive.
grb::Vector<count_t> vertex_butterflies_naive(const Adjacency& a);

/// Brute-force per-edge counts on tiny graphs.
grb::Csr<count_t> edge_butterflies_naive(const Adjacency& a);

} // namespace kronlab::graph
