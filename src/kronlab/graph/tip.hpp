// kronlab/graph/tip.hpp
//
// Tip decomposition — the *vertex* peeling companion of the wing (edge)
// decomposition, from Sarıyüce–Pinar's "Peeling Bipartite Networks for
// Dense Subgraph Discovery" [4].
//
// The k-tip of a bipartite graph, with respect to one side, is the maximal
// subgraph in which every vertex of that side participates in at least k
// butterflies *within the subgraph* (vertices of the other side are never
// peeled).  The tip number of a side-vertex is the largest k whose k-tip
// contains it.
//
// Like wings, tip ground truth cannot be planted through Kronecker factors
// (Remark 1); kronlab ships the decomposition so computed baselines are
// validatable.

#pragma once

#include <vector>

#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/graph.hpp"

namespace kronlab::graph {

/// Result of the tip decomposition for the chosen side.
struct TipDecomposition {
  /// Tip number per vertex; vertices on the non-peeled side (and isolated
  /// peeled-side vertices) carry 0 and are flagged below.
  std::vector<count_t> tip;
  /// True for vertices on the peeled side.
  std::vector<bool> peeled_side;
  count_t max_tip = 0;
};

/// Peel the side-`side` vertices (0 = U, 1 = W of `part`).  Requires a
/// loop-free bipartite graph and a valid two-coloring of it.
TipDecomposition tip_decomposition(const Adjacency& a,
                                   const Bipartition& part, int side);

/// Tiny-graph oracle by iterated deletion to a fixpoint per k.
TipDecomposition tip_decomposition_naive(const Adjacency& a,
                                         const Bipartition& part, int side);

} // namespace kronlab::graph
