#include "kronlab/graph/degeneracy.hpp"

#include <algorithm>

#include "kronlab/common/error.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab::graph {

CoreDecomposition core_decomposition(const Adjacency& a) {
  require_undirected(a, "core_decomposition");
  if (!grb::has_no_self_loops(a)) {
    throw domain_error("core_decomposition: adjacency must be loop-free");
  }
  const auto n = static_cast<std::size_t>(a.nrows());
  CoreDecomposition out;
  out.core.assign(n, 0);
  out.order.reserve(n);
  if (n == 0) return out;

  // Matula–Beck bucket peeling.
  std::vector<count_t> deg(n);
  count_t max_deg = 0;
  for (std::size_t v = 0; v < n; ++v) {
    deg[v] = a.row_degree(static_cast<index_t>(v));
    max_deg = std::max(max_deg, deg[v]);
  }
  std::vector<std::vector<index_t>> buckets(
      static_cast<std::size_t>(max_deg) + 1);
  for (std::size_t v = 0; v < n; ++v) {
    buckets[static_cast<std::size_t>(deg[v])].push_back(
        static_cast<index_t>(v));
  }
  std::vector<char> removed(n, 0);
  count_t current = 0;
  std::size_t bucket = 0;
  while (out.order.size() < n) {
    while (bucket < buckets.size() && buckets[bucket].empty()) ++bucket;
    KRONLAB_DBG_ASSERT(bucket < buckets.size(), "peeling ran dry");
    const index_t v = buckets[bucket].back();
    buckets[bucket].pop_back();
    if (removed[static_cast<std::size_t>(v)] ||
        deg[static_cast<std::size_t>(v)] !=
            static_cast<count_t>(bucket)) {
      continue; // stale bucket entry
    }
    current = std::max(current, static_cast<count_t>(bucket));
    out.core[static_cast<std::size_t>(v)] = current;
    out.order.push_back(v);
    removed[static_cast<std::size_t>(v)] = 1;
    for (const index_t u : a.row_cols(v)) {
      auto& du = deg[static_cast<std::size_t>(u)];
      if (!removed[static_cast<std::size_t>(u)] && du > 0) {
        --du;
        buckets[static_cast<std::size_t>(du)].push_back(u);
        if (static_cast<std::size_t>(du) < bucket) {
          bucket = static_cast<std::size_t>(du);
        }
      }
    }
  }
  out.degeneracy = current;
  return out;
}

count_t degeneracy(const Adjacency& a) {
  return core_decomposition(a).degeneracy;
}

} // namespace kronlab::graph
