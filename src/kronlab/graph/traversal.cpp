#include "kronlab/graph/traversal.hpp"

#include <deque>

#include "kronlab/common/error.hpp"

namespace kronlab::graph {

std::vector<index_t> bfs_distances(const Adjacency& a, index_t source) {
  KRONLAB_REQUIRE(a.nrows() == a.ncols(), "bfs requires a square adjacency");
  KRONLAB_REQUIRE(source >= 0 && source < a.nrows(),
                  "bfs source out of range");
  std::vector<index_t> dist(static_cast<std::size_t>(a.nrows()),
                            unreachable);
  std::deque<index_t> frontier;
  dist[static_cast<std::size_t>(source)] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const index_t u = frontier.front();
    frontier.pop_front();
    const index_t du = dist[static_cast<std::size_t>(u)];
    for (const index_t v : a.row_cols(u)) {
      if (dist[static_cast<std::size_t>(v)] == unreachable) {
        dist[static_cast<std::size_t>(v)] = du + 1;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<index_t> Components::sizes() const {
  std::vector<index_t> s(static_cast<std::size_t>(count), 0);
  for (const index_t l : label) ++s[static_cast<std::size_t>(l)];
  return s;
}

Components connected_components(const Adjacency& a) {
  KRONLAB_REQUIRE(a.nrows() == a.ncols(),
                  "connected_components requires a square adjacency");
  Components c;
  c.label.assign(static_cast<std::size_t>(a.nrows()), -1);
  std::vector<index_t> stack;
  for (index_t s = 0; s < a.nrows(); ++s) {
    if (c.label[static_cast<std::size_t>(s)] != -1) continue;
    const index_t id = c.count++;
    c.label[static_cast<std::size_t>(s)] = id;
    stack.push_back(s);
    while (!stack.empty()) {
      const index_t u = stack.back();
      stack.pop_back();
      for (const index_t v : a.row_cols(u)) {
        if (c.label[static_cast<std::size_t>(v)] == -1) {
          c.label[static_cast<std::size_t>(v)] = id;
          stack.push_back(v);
        }
      }
    }
  }
  return c;
}

bool is_connected(const Adjacency& a) {
  if (a.nrows() == 0) return true;
  return connected_components(a).count == 1;
}

} // namespace kronlab::graph
