// kronlab/graph/blocked.hpp
//
// Degree-ordered, cache-blocked 4-cycle counting kernels.
//
// The reference counters in butterflies.hpp walk wedges i–j–k with a dense
// n-sized accumulator indexed by the *original* vertex ids.  On the
// heavy-tailed factors the paper cares about, wedge endpoints are wildly
// non-uniform — a few hub vertices absorb most increments — but their ids
// are scattered across the whole array, so nearly every increment is an L2
// miss.  The kernels here restructure that hot path three ways:
//
//  1. Degree ordering.  Vertices are relabeled by non-increasing degree
//     (ties by original id).  Hot wedge endpoints cluster at the low end
//     of the id space, so accumulator traffic concentrates in a few
//     cache-resident pages, and iterating rows in relabeled order visits
//     the CSR in degree-sorted blocks — the dynamic scheduler's chunks
//     carry comparable work and stay cache-resident.
//
//  2. Blocked accumulation.  The per-worker accumulator is a dense
//     L2-sized block over the head of the relabeled id space, with an
//     open-addressing hash map catching the (rare, low-degree) tail
//     beyond the block.  The dense block uses 32-bit counters: a wedge
//     count |N(i) ∩ N(k)| never exceeds the vertex count of a factor.
//
//  3. Rank-halved pair enumeration.  In relabeled order, id comparison
//     IS degree comparison, so each wedge-endpoint pair {i, k} is
//     materialized exactly once, from its higher-rank (lower-degree)
//     side: the (sorted) inner scan stops at k ≥ i, halving wedge
//     traffic.  The vertex kernel credits C(c,2) to both endpoints from
//     the table drain.  The edge kernel replays the same — now
//     cache-warm — wedge prefix a second time and credits (c − 1)
//     butterflies to both edges of each wedge at stored-entry offsets
//     known from the row walk, then folds each edge's two mirror CSR
//     slots with one cursor sweep.
//
// All kernels return counts bit-identical to the reference implementations
// (exact integer combinatorics — the cross-check suite and the factored
// ground truth of Thms 3–5 enforce this).

#pragma once

#include <vector>

#include "kronlab/graph/graph.hpp"

namespace kronlab::graph {

/// Degree-ordered relabeling of an undirected adjacency: `rank[v]` is v's
/// position in non-increasing degree order (ties broken by original id),
/// `orig[r]` inverts it, and `relabeled` is the adjacency re-indexed by
/// rank with rows sorted.  Relabeling is a similarity permutation, so every
/// count computed on `relabeled` maps back through `orig`.
struct DegreeOrder {
  std::vector<index_t> rank; ///< original id → degree rank
  std::vector<index_t> orig; ///< degree rank → original id
  Adjacency relabeled;       ///< adjacency over ranks, rows sorted
  /// Stored-entry offset in the original matrix of each relabeled entry
  /// (built only with `with_entry_map`; lets per-edge results computed in
  /// rank space scatter back without any binary search).
  std::vector<offset_t> entry_map;

  explicit DegreeOrder(const Adjacency& a, bool with_entry_map = false);
};

/// Number of dense 32-bit slots in the blocked wedge accumulator: 1<<16
/// entries = 256 KiB, sized to sit in a typical L2 alongside the CSR rows
/// being scanned.
inline constexpr index_t wedge_block_entries = index_t{1} << 16;

/// Per-vertex 4-cycle participation (Def. 8) via the degree-ordered
/// blocked kernel.  Bit-identical to vertex_butterflies_reference.
grb::Vector<count_t> vertex_butterflies_blocked(const Adjacency& a);

/// Per-edge 4-cycle participation (Def. 9) via the degree-ordered blocked
/// kernel; result has `a`'s structure.  Bit-identical to
/// edge_butterflies_reference.
grb::Csr<count_t> edge_butterflies_blocked(const Adjacency& a);

} // namespace kronlab::graph
