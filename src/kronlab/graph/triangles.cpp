#include "kronlab/graph/triangles.hpp"

#include <algorithm>

#include "kronlab/common/error.hpp"
#include "kronlab/grb/coo.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::graph {

namespace {

count_t sorted_intersection_size(std::span<const index_t> a,
                                 std::span<const index_t> b) {
  count_t n = 0;
  std::size_t ia = 0, ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] < b[ib]) {
      ++ia;
    } else if (b[ib] < a[ia]) {
      ++ib;
    } else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

void require_loop_free(const Adjacency& a, const char* where) {
  KRONLAB_REQUIRE(a.nrows() == a.ncols(), "adjacency must be square");
  if (!grb::has_no_self_loops(a)) {
    throw domain_error(std::string(where) +
                       ": adjacency must have no self loops");
  }
}

} // namespace

grb::Csr<count_t> edge_triangles(const Adjacency& a) {
  require_loop_free(a, "edge_triangles");
  metrics::KernelScope scope("graph/edge_triangles");
  grb::Csr<count_t> out = a;
  auto& vals = out.vals();
  const auto& rp = out.row_ptr();
  // Row cost is quadratic in degree, so hub rows of heavy-tailed factors
  // need the dynamic schedule to avoid serializing behind one chunk.
  parallel_for_dynamic(0, a.nrows(), [&](index_t i) {
    const auto ni = a.row_cols(i);
    const auto cols = out.row_cols(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      vals[static_cast<std::size_t>(rp[static_cast<std::size_t>(i)]) + k] =
          sorted_intersection_size(ni, a.row_cols(j));
    }
  });
  return out;
}

grb::Vector<count_t> vertex_triangles(const Adjacency& a) {
  // t_i = ½ Σ_{j∈N(i)} Δ_ij (each triangle at i is seen via both incident
  // edges).
  const auto et = edge_triangles(a);
  auto sums = grb::reduce_rows(et);
  grb::Vector<count_t> t(a.nrows());
  for (index_t i = 0; i < a.nrows(); ++i) t[i] = sums[i] / 2;
  return t;
}

count_t global_triangles(const Adjacency& a) {
  const auto t = vertex_triangles(a);
  return grb::reduce(t) / 3;
}

} // namespace kronlab::graph
