#include "kronlab/graph/eccentricity.hpp"

#include <algorithm>
#include <atomic>

#include "kronlab/common/error.hpp"
#include "kronlab/graph/traversal.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::graph {

std::vector<index_t> eccentricities(const Adjacency& a) {
  const index_t n = a.nrows();
  std::vector<index_t> ecc(static_cast<std::size_t>(n), 0);
  std::atomic<bool> disconnected{false};
  parallel_for(0, n, [&](index_t s) {
    const auto dist = bfs_distances(a, s);
    index_t e = 0;
    for (const index_t d : dist) {
      if (d == unreachable) {
        disconnected.store(true, std::memory_order_relaxed);
        return;
      }
      e = std::max(e, d);
    }
    ecc[static_cast<std::size_t>(s)] = e;
  });
  if (disconnected.load()) {
    throw domain_error("eccentricities: graph is disconnected");
  }
  return ecc;
}

index_t diameter(const Adjacency& a) {
  const auto ecc = eccentricities(a);
  return ecc.empty() ? 0 : *std::max_element(ecc.begin(), ecc.end());
}

index_t radius(const Adjacency& a) {
  const auto ecc = eccentricities(a);
  return ecc.empty() ? 0 : *std::min_element(ecc.begin(), ecc.end());
}

} // namespace kronlab::graph
