#include "kronlab/graph/stats.hpp"

#include <algorithm>

#include "kronlab/common/error.hpp"

namespace kronlab::graph {

std::map<count_t, index_t> degree_histogram(const Adjacency& a) {
  std::map<count_t, index_t> hist;
  const auto d = degrees(a);
  for (index_t i = 0; i < d.size(); ++i) ++hist[d[i]];
  return hist;
}

std::vector<DegreeBin> degree_binned(const Adjacency& a,
                                     const grb::Vector<count_t>& values) {
  KRONLAB_REQUIRE(values.size() == a.nrows(),
                  "degree_binned: values size mismatch");
  const auto d = degrees(a);
  struct Acc {
    index_t n = 0;
    count_t sum = 0;
    count_t min = 0;
    count_t max = 0;
  };
  std::map<count_t, Acc> bins;
  for (index_t v = 0; v < d.size(); ++v) {
    auto& b = bins[d[v]];
    if (b.n == 0) {
      b.min = b.max = values[v];
    } else {
      b.min = std::min(b.min, values[v]);
      b.max = std::max(b.max, values[v]);
    }
    ++b.n;
    b.sum += values[v];
  }
  std::vector<DegreeBin> out;
  out.reserve(bins.size());
  for (const auto& [deg, acc] : bins) {
    out.push_back({deg, acc.n,
                   static_cast<double>(acc.sum) / static_cast<double>(acc.n),
                   acc.min, acc.max});
  }
  return out;
}

DegreeSummary degree_summary(const Adjacency& a) {
  DegreeSummary s;
  auto d = degrees(a).data();
  if (d.empty()) return s;
  std::sort(d.begin(), d.end());
  s.max_degree = d.back();
  count_t total = 0;
  for (const count_t v : d) total += v;
  s.mean_degree = static_cast<double>(total) / static_cast<double>(d.size());
  s.median_degree = d[d.size() / 2];
  // Gini = (2 Σ_i i·d_i)/(n Σ d) − (n+1)/n with 1-based ranks on the sorted
  // sequence.
  if (total > 0) {
    double weighted = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      weighted += static_cast<double>(i + 1) * static_cast<double>(d[i]);
    }
    const auto n = static_cast<double>(d.size());
    s.gini = 2.0 * weighted / (n * static_cast<double>(total)) -
             (n + 1.0) / n;
  }
  return s;
}

} // namespace kronlab::graph
