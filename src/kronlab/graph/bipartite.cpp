#include "kronlab/graph/bipartite.hpp"

#include <deque>

#include "kronlab/common/error.hpp"
#include "kronlab/grb/coo.hpp"

namespace kronlab::graph {

index_t Bipartition::size_u() const {
  index_t n = 0;
  for (const int s : side) n += (s == 0);
  return n;
}

index_t Bipartition::size_w() const {
  return static_cast<index_t>(side.size()) - size_u();
}

std::vector<index_t> Bipartition::u_vertices() const {
  std::vector<index_t> v;
  for (std::size_t i = 0; i < side.size(); ++i) {
    if (side[i] == 0) v.push_back(static_cast<index_t>(i));
  }
  return v;
}

std::vector<index_t> Bipartition::w_vertices() const {
  std::vector<index_t> v;
  for (std::size_t i = 0; i < side.size(); ++i) {
    if (side[i] == 1) v.push_back(static_cast<index_t>(i));
  }
  return v;
}

std::optional<Bipartition> two_color(const Adjacency& a) {
  KRONLAB_REQUIRE(a.nrows() == a.ncols(),
                  "two_color requires a square adjacency");
  const auto n = static_cast<std::size_t>(a.nrows());
  std::vector<int> side(n, -1);
  std::deque<index_t> frontier;
  for (index_t s = 0; s < a.nrows(); ++s) {
    if (side[static_cast<std::size_t>(s)] != -1) continue;
    side[static_cast<std::size_t>(s)] = 0;
    frontier.push_back(s);
    while (!frontier.empty()) {
      const index_t u = frontier.front();
      frontier.pop_front();
      const int su = side[static_cast<std::size_t>(u)];
      for (const index_t v : a.row_cols(u)) {
        if (v == u) return std::nullopt; // self loop = odd cycle
        auto& sv = side[static_cast<std::size_t>(v)];
        if (sv == -1) {
          sv = 1 - su;
          frontier.push_back(v);
        } else if (sv == su) {
          return std::nullopt; // odd cycle
        }
      }
    }
  }
  return Bipartition{std::move(side)};
}

bool is_bipartite(const Adjacency& a) { return two_color(a).has_value(); }

Adjacency bipartite_from_biadjacency(const grb::Csr<count_t>& x) {
  const index_t nu = x.nrows();
  const index_t nw = x.ncols();
  grb::Coo<count_t> coo(nu + nw, nu + nw);
  coo.reserve(2 * x.nnz());
  for (index_t i = 0; i < nu; ++i) {
    const auto cols = x.row_cols(i);
    const auto vals = x.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.push(i, nu + cols[k], vals[k]);
      coo.push(nu + cols[k], i, vals[k]);
    }
  }
  return Adjacency::from_coo(coo);
}

grb::Csr<count_t> biadjacency_block(const Adjacency& a, index_t n_u) {
  KRONLAB_REQUIRE(a.nrows() == a.ncols(),
                  "biadjacency_block requires a square adjacency");
  KRONLAB_REQUIRE(n_u >= 0 && n_u <= a.nrows(), "n_u out of range");
  const index_t n_w = a.nrows() - n_u;
  grb::Coo<count_t> coo(n_u, n_w);
  for (index_t i = 0; i < n_u; ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] < n_u) {
        throw domain_error(
            "biadjacency_block: edge within the U side — adjacency is not "
            "ordered block anti-diagonally");
      }
      coo.push(i, cols[k] - n_u, vals[k]);
    }
  }
  // Rows n_u.. must only point back into U (symmetry gives us this if the
  // upper block was clean, but verify to keep the contract tight).
  for (index_t i = n_u; i < a.nrows(); ++i) {
    for (const index_t c : a.row_cols(i)) {
      if (c >= n_u) {
        throw domain_error(
            "biadjacency_block: edge within the W side — adjacency is not "
            "ordered block anti-diagonally");
      }
    }
  }
  return grb::Csr<count_t>::from_coo(coo);
}

} // namespace kronlab::graph
