#include "kronlab/graph/bipartite_clustering.hpp"

#include "kronlab/common/error.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::graph {

namespace {

void require_bipartite_simple(const Adjacency& a, const char* where) {
  require_undirected(a, where);
  if (!grb::has_no_self_loops(a) || !is_bipartite(a)) {
    throw domain_error(std::string(where) +
                       ": requires a loop-free bipartite graph");
  }
}

} // namespace

count_t three_paths(const Adjacency& a) {
  require_bipartite_simple(a, "three_paths");
  metrics::KernelScope scope("graph/three_paths");
  const auto d = degrees(a);
  const count_t directed = parallel_reduce_dynamic<count_t>(
      0, a.nrows(), 0,
      [&](index_t i) {
        count_t acc = 0;
        for (const index_t j : a.row_cols(i)) {
          acc += (d[i] - 1) * (d[j] - 1);
        }
        return acc;
      },
      [](count_t x, count_t y) { return x + y; });
  return directed / 2;
}

double robins_alexander_cc(const Adjacency& a) {
  const count_t p3 = three_paths(a);
  if (p3 == 0) return 0.0;
  return 4.0 * static_cast<double>(global_butterflies(a)) /
         static_cast<double>(p3);
}

grb::Vector<double> local_closure(const Adjacency& a) {
  require_bipartite_simple(a, "local_closure");
  metrics::KernelScope scope("graph/local_closure");
  const auto d = degrees(a);
  const auto s = vertex_butterflies(a);
  grb::Vector<double> out(a.nrows(), 0.0);
  parallel_for_dynamic(0, a.nrows(), [&](index_t v) {
    // 3-paths with v interior: pick the other interior j ∈ N(v); the path
    // is x–v–j–y with x ∈ N(v)\{j}, y ∈ N(j)\{v}.
    count_t paths = 0;
    for (const index_t j : a.row_cols(v)) {
      paths += (d[v] - 1) * (d[j] - 1);
    }
    if (paths > 0) {
      // Each 4-cycle at v closes exactly two interior-v 3-paths.
      out[v] = 2.0 * static_cast<double>(s[v]) /
               static_cast<double>(paths);
    }
  });
  return out;
}

} // namespace kronlab::graph

namespace kronlab::kron {

count_t product_three_paths(const BipartiteKronecker& kp) {
  const auto& m = kp.left();
  const auto& b = kp.right();
  if (!graph::is_bipartite(b)) {
    throw domain_error(
        "product_three_paths: right factor must be bipartite so the "
        "product has no triangles");
  }
  const auto d_m = grb::reduce_rows(m);
  const auto d_b = grb::reduce_rows(b);
  const count_t quad_m = grb::dot(d_m, grb::mxv(m, d_m)); // d_MᵗM d_M
  const count_t quad_b = grb::dot(d_b, grb::mxv(b, d_b));
  const count_t sumsq_m = grb::dot(d_m, d_m);
  const count_t sumsq_b = grb::dot(d_b, d_b);
  const count_t directed =
      quad_m * quad_b - 2 * sumsq_m * sumsq_b + m.nnz() * b.nnz();
  KRONLAB_DBG_ASSERT(directed % 2 == 0, "3-path count must be even");
  return directed / 2;
}

double product_robins_alexander_cc(const BipartiteKronecker& kp) {
  const count_t p3 = product_three_paths(kp);
  if (p3 == 0) return 0.0;
  return 4.0 * static_cast<double>(global_squares(kp)) /
         static_cast<double>(p3);
}

} // namespace kronlab::kron
