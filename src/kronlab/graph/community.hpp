// kronlab/graph/community.hpp
//
// Bipartite community (dense vertex subset) metrics — Def. 11.
//
// A community in a bipartite graph 𝒢_A is S = R ∪ T with R ⊂ 𝒰, T ⊂ 𝒲.
// Internal/external edge counts are quadratic forms of the indicator vector
// 1_S; densities normalize by the bipartite-complete counts.

#pragma once

#include <vector>

#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/graph.hpp"

namespace kronlab::graph {

/// A vertex subset of a bipartite graph, split by side.
struct BipartiteSubset {
  std::vector<index_t> r; ///< members in 𝒰 (left side)
  std::vector<index_t> t; ///< members in 𝒲 (right side)

  [[nodiscard]] index_t size() const {
    return static_cast<index_t>(r.size() + t.size());
  }

  /// Indicator vector 1_S of length n.
  [[nodiscard]] grb::Vector<count_t> indicator(index_t n) const;
};

/// Internal/external edge counts and densities of S (Def. 11).
struct CommunityStats {
  count_t m_in = 0;      ///< edges with both endpoints in S
  count_t m_out = 0;     ///< edges with exactly one endpoint in S
  double rho_in = 0.0;   ///< m_in / (|R|·|T|)
  double rho_out = 0.0;  ///< m_out / (|R||𝒲| + |𝒰||T| − 2|R||T|)
};

/// Compute Def. 11 statistics.  `part` must be a valid two-coloring of `a`
/// and every member of `s.r` / `s.t` must lie on side 0 / side 1.
CommunityStats community_stats(const Adjacency& a, const Bipartition& part,
                               const BipartiteSubset& s);

/// m_in(S) = ½·1_Sᵗ A 1_S — exposed separately for testing the algebraic
/// path against the combinatorial one.
count_t internal_edges(const Adjacency& a, const grb::Vector<count_t>& ind);

/// m_out(S) = 1_Sᵗ A (1 − 1_S).
count_t external_edges(const Adjacency& a, const grb::Vector<count_t>& ind);

} // namespace kronlab::graph
