// kronlab/graph/graph.hpp
//
// Graph-level view over adjacency matrices.
//
// Throughout kronlab a graph is its adjacency matrix: a square
// grb::Csr<count_t> with 0/1 values (Boolean adjacency, §II).  This header
// provides construction from edge lists, structural predicates, and the
// basic statistics (degree, edge count) used everywhere else.

#pragma once

#include <utility>
#include <vector>

#include "kronlab/common/types.hpp"
#include "kronlab/grb/csr.hpp"
#include "kronlab/grb/vector.hpp"

namespace kronlab::graph {

/// Adjacency matrix type used by every graph algorithm.
using Adjacency = grb::Csr<count_t>;

/// Build an undirected simple graph on n vertices from an edge list.
/// Self loops are kept if present; duplicate edges collapse to one
/// (values clamp to 1).
Adjacency from_undirected_edges(
    index_t n, const std::vector<std::pair<index_t, index_t>>& edges);

/// True iff `a` is square, symmetric, and 0/1-valued.
bool is_undirected_adjacency(const Adjacency& a);

/// Throw domain_error unless is_undirected_adjacency(a).
void require_undirected(const Adjacency& a, const char* where);

/// Number of vertices.
inline index_t num_vertices(const Adjacency& a) { return a.nrows(); }

/// Number of undirected edges: (nnz + #loops)/2, counting each self loop
/// as one edge.
count_t num_edges(const Adjacency& a);

/// Number of self loops.
count_t num_self_loops(const Adjacency& a);

/// Degree vector d = A·1 (a self loop contributes 1).
grb::Vector<count_t> degrees(const Adjacency& a);

/// Two-hop walk counts w² = A²·1 (Def. 2) without forming A².
grb::Vector<count_t> two_hop_walks(const Adjacency& a);

/// Maximum degree.
count_t max_degree(const Adjacency& a);

/// Remove self loops: A - A∘I.
Adjacency strip_self_loops(const Adjacency& a);

} // namespace kronlab::graph
