#include "kronlab/graph/butterflies.hpp"

#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/graph/blocked.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::graph {

namespace {

void require_simple(const Adjacency& a, const char* where) {
  KRONLAB_REQUIRE(a.nrows() == a.ncols(), "adjacency must be square");
  if (!grb::has_no_self_loops(a)) {
    throw domain_error(std::string(where) +
                       ": adjacency must have no self loops");
  }
}

/// Worker-local wedge-count table.  Allocated once per worker by the
/// dynamic dispatcher and reused across every chunk that worker claims —
/// the O(n) zero-fill happens per worker, not per chunk.
struct WedgeScratch {
  explicit WedgeScratch(index_t n)
      : cnt(static_cast<std::size_t>(n), 0) {}
  std::vector<count_t> cnt;     ///< cnt[k] = |N(i) ∩ N(k)|, zeroed between i's
  std::vector<index_t> touched; ///< nonzero entries of cnt
};

/// Visit each vertex i in [lo, hi), building the wedge-count table
/// cnt[k] = |N(i) ∩ N(k)| over i's second neighborhood, then hand
/// (i, cnt, touched) to `use`.  cnt entries are zeroed before return.
template <typename Use>
void for_each_wedge_table(const Adjacency& a, WedgeScratch& ws, index_t lo,
                          index_t hi, Use&& use) {
  auto& cnt = ws.cnt;
  auto& touched = ws.touched;
  for (index_t i = lo; i < hi; ++i) {
    touched.clear();
    for (const index_t j : a.row_cols(i)) {
      for (const index_t k : a.row_cols(j)) {
        if (k == i) continue;
        if (cnt[static_cast<std::size_t>(k)] == 0) touched.push_back(k);
        ++cnt[static_cast<std::size_t>(k)];
      }
    }
    use(i, cnt, touched);
    for (const index_t k : touched) cnt[static_cast<std::size_t>(k)] = 0;
  }
}

} // namespace

grb::Vector<count_t> vertex_butterflies(const Adjacency& a) {
  metrics::KernelScope scope("graph/vertex_butterflies");
  return vertex_butterflies_blocked(a);
}

grb::Csr<count_t> edge_butterflies(const Adjacency& a) {
  metrics::KernelScope scope("graph/edge_butterflies");
  return edge_butterflies_blocked(a);
}

grb::Vector<count_t> vertex_butterflies_reference(const Adjacency& a) {
  require_simple(a, "vertex_butterflies_reference");
  metrics::KernelScope scope("graph/vertex_butterflies_reference");
  grb::Vector<count_t> s(a.nrows(), 0);
  parallel_for_range_dynamic_scratch(
      0, a.nrows(), [&](std::size_t) { return WedgeScratch(a.nrows()); },
      [&](WedgeScratch& ws, index_t lo, index_t hi) {
        for_each_wedge_table(
            a, ws, lo, hi,
            [&](index_t i, const std::vector<count_t>& cnt,
                const std::vector<index_t>& touched) {
              count_t acc = 0;
              for (const index_t k : touched) {
                const count_t c = cnt[static_cast<std::size_t>(k)];
                acc += c * (c - 1) / 2;
              }
              s[i] = acc;
            });
      });
  return s;
}

grb::Csr<count_t> edge_butterflies_reference(const Adjacency& a) {
  require_simple(a, "edge_butterflies_reference");
  metrics::KernelScope scope("graph/edge_butterflies_reference");
  grb::Csr<count_t> out = a;
  auto& vals = out.vals();
  const auto& rp = out.row_ptr();
  parallel_for_range_dynamic_scratch(
      0, a.nrows(), [&](std::size_t) { return WedgeScratch(a.nrows()); },
      [&](WedgeScratch& ws, index_t lo, index_t hi) {
        for_each_wedge_table(
            a, ws, lo, hi,
            [&](index_t i, const std::vector<count_t>& cnt,
                const std::vector<index_t>&) {
              const auto cols = a.row_cols(i);
              for (std::size_t e = 0; e < cols.size(); ++e) {
                const index_t j = cols[e];
                count_t acc = 0;
                for (const index_t k : a.row_cols(j)) {
                  if (k == i) continue;
                  acc += cnt[static_cast<std::size_t>(k)] - 1;
                }
                vals[static_cast<std::size_t>(
                         rp[static_cast<std::size_t>(i)]) +
                     e] = acc;
              }
            });
      });
  return out;
}

count_t global_butterflies(const Adjacency& a) {
  // Each square has 4 vertices, each participating once.
  return grb::reduce(vertex_butterflies(a)) / 4;
}

count_t global_butterflies_naive(const Adjacency& a) {
  require_simple(a, "global_butterflies_naive");
  const index_t n = a.nrows();
  KRONLAB_REQUIRE(n <= 128, "naive counter is for tiny graphs only");
  count_t total = 0;
  // Count each 4-cycle exactly once: anchor at its smallest vertex p0 and
  // kill the reflection symmetry by requiring p1 < p3.
  for (index_t p0 = 0; p0 < n; ++p0) {
    for (const index_t p1 : a.row_cols(p0)) {
      if (p1 <= p0) continue;
      for (const index_t p2 : a.row_cols(p1)) {
        if (p2 <= p0) continue; // p2 != p0 and p0 minimal
        for (const index_t p3 : a.row_cols(p2)) {
          if (p3 <= p1 || p3 == p2) continue; // p1 < p3, distinctness
          if (a.has(p3, p0)) ++total;
        }
      }
    }
  }
  return total;
}

grb::Vector<count_t> vertex_butterflies_naive(const Adjacency& a) {
  require_simple(a, "vertex_butterflies_naive");
  const index_t n = a.nrows();
  KRONLAB_REQUIRE(n <= 128, "naive counter is for tiny graphs only");
  grb::Vector<count_t> s(n, 0);
  for (index_t p0 = 0; p0 < n; ++p0) {
    for (const index_t p1 : a.row_cols(p0)) {
      for (const index_t p2 : a.row_cols(p1)) {
        if (p2 == p0) continue;
        for (const index_t p3 : a.row_cols(p2)) {
          if (p3 == p1 || p3 == p0) continue;
          if (a.has(p3, p0)) ++s[p0];
        }
      }
    }
  }
  // Each 4-cycle through p0 was traversed in both directions.
  for (index_t i = 0; i < n; ++i) s[i] /= 2;
  return s;
}

grb::Csr<count_t> edge_butterflies_naive(const Adjacency& a) {
  require_simple(a, "edge_butterflies_naive");
  const index_t n = a.nrows();
  KRONLAB_REQUIRE(n <= 128, "naive counter is for tiny graphs only");
  grb::Csr<count_t> out = a;
  auto& vals = out.vals();
  const auto& rp = out.row_ptr();
  for (index_t i = 0; i < n; ++i) {
    const auto cols = out.row_cols(i);
    for (std::size_t e = 0; e < cols.size(); ++e) {
      const index_t j = cols[e];
      count_t c = 0;
      // Squares i–j–x–y–i with all four distinct.
      for (const index_t x : a.row_cols(j)) {
        if (x == i) continue;
        for (const index_t y : a.row_cols(x)) {
          if (y == j || y == i) continue;
          if (a.has(y, i)) ++c;
        }
      }
      vals[static_cast<std::size_t>(rp[static_cast<std::size_t>(i)]) + e] =
          c;
    }
  }
  return out;
}

} // namespace kronlab::graph
