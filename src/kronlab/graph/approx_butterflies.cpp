#include "kronlab/graph/approx_butterflies.hpp"

#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab::graph {

namespace {

void require_simple(const Adjacency& a, const char* where) {
  KRONLAB_REQUIRE(a.nrows() == a.ncols(), "adjacency must be square");
  if (!grb::has_no_self_loops(a)) {
    throw domain_error(std::string(where) +
                       ": adjacency must have no self loops");
  }
}

/// Scratch for per-sample wedge counting.
struct WedgeScratch {
  explicit WedgeScratch(index_t n)
      : cnt(static_cast<std::size_t>(n), 0) {}
  std::vector<count_t> cnt;
  std::vector<index_t> touched;

  /// Fill cnt[k] = |N(v) ∩ N(k)| for k ≠ v in v's 2-hop neighborhood.
  void fill(const Adjacency& a, index_t v) {
    touched.clear();
    for (const index_t j : a.row_cols(v)) {
      for (const index_t k : a.row_cols(j)) {
        if (k == v) continue;
        if (cnt[static_cast<std::size_t>(k)] == 0) touched.push_back(k);
        ++cnt[static_cast<std::size_t>(k)];
      }
    }
  }
  void clear() {
    for (const index_t k : touched) cnt[static_cast<std::size_t>(k)] = 0;
  }
};

count_t sorted_common(std::span<const index_t> x,
                      std::span<const index_t> y) {
  count_t n = 0;
  std::size_t a = 0, b = 0;
  while (a < x.size() && b < y.size()) {
    if (x[a] < y[b]) {
      ++a;
    } else if (y[b] < x[a]) {
      ++b;
    } else {
      ++n;
      ++a;
      ++b;
    }
  }
  return n;
}

} // namespace

ButterflyEstimate approx_butterflies_vertex(const Adjacency& a,
                                            index_t samples, Rng& rng) {
  require_simple(a, "approx_butterflies_vertex");
  KRONLAB_REQUIRE(samples >= 1, "need at least one sample");
  const index_t n = a.nrows();
  if (n == 0) return {0.0, samples};
  WedgeScratch scratch(n);
  double acc = 0.0;
  for (index_t t = 0; t < samples; ++t) {
    const index_t v = rng.uniform(0, n - 1);
    scratch.fill(a, v);
    count_t s = 0;
    for (const index_t k : scratch.touched) {
      const count_t c = scratch.cnt[static_cast<std::size_t>(k)];
      s += c * (c - 1) / 2;
    }
    scratch.clear();
    acc += static_cast<double>(s);
  }
  return {acc / static_cast<double>(samples) * static_cast<double>(n) / 4.0,
          samples};
}

ButterflyEstimate approx_butterflies_edge(const Adjacency& a,
                                          index_t samples, Rng& rng) {
  require_simple(a, "approx_butterflies_edge");
  KRONLAB_REQUIRE(samples >= 1, "need at least one sample");
  if (a.nnz() == 0) return {0.0, samples};
  // Entry → row lookup for uniform stored-entry sampling.
  std::vector<index_t> entry_row(static_cast<std::size_t>(a.nnz()));
  {
    std::size_t o = 0;
    for (index_t i = 0; i < a.nrows(); ++i) {
      for (offset_t k = 0; k < a.row_degree(i); ++k) entry_row[o++] = i;
    }
  }
  const double m = static_cast<double>(a.nnz()) / 2.0;
  WedgeScratch scratch(a.nrows());
  double acc = 0.0;
  for (index_t t = 0; t < samples; ++t) {
    const auto e = static_cast<std::size_t>(rng.uniform(0, a.nnz() - 1));
    const index_t u = entry_row[e];
    const index_t v = a.col_idx()[e];
    // ◇_uv = Σ_{k∈N(v)\{u}} (|N(u)∩N(k)| − 1).
    scratch.fill(a, u);
    count_t sq = 0;
    for (const index_t k : a.row_cols(v)) {
      if (k == u) continue;
      sq += scratch.cnt[static_cast<std::size_t>(k)] - 1;
    }
    scratch.clear();
    acc += static_cast<double>(sq);
  }
  return {acc / static_cast<double>(samples) * m / 4.0, samples};
}

ButterflyEstimate approx_butterflies_wedge(const Adjacency& a,
                                           index_t samples, Rng& rng) {
  require_simple(a, "approx_butterflies_wedge");
  KRONLAB_REQUIRE(samples >= 1, "need at least one sample");
  const index_t n = a.nrows();
  // Wedge weights per center: C(d_c, 2); cumulative for proportional
  // sampling.
  std::vector<count_t> cum(static_cast<std::size_t>(n) + 1, 0);
  for (index_t c = 0; c < n; ++c) {
    const count_t d = a.row_degree(c);
    cum[static_cast<std::size_t>(c) + 1] =
        cum[static_cast<std::size_t>(c)] + d * (d - 1) / 2;
  }
  const count_t total_wedges = cum.back();
  if (total_wedges == 0) return {0.0, samples};

  double acc = 0.0;
  for (index_t t = 0; t < samples; ++t) {
    // Center proportional to wedge count (binary search on cumulative).
    const auto pick = static_cast<count_t>(
        rng.next_below(static_cast<std::uint64_t>(total_wedges)));
    const auto it = std::upper_bound(cum.begin(), cum.end(), pick);
    const index_t c = static_cast<index_t>(it - cum.begin()) - 1;
    const auto nbrs = a.row_cols(c);
    const auto d = static_cast<index_t>(nbrs.size());
    // Uniform unordered neighbor pair (x, y).
    index_t xi = rng.uniform(0, d - 1);
    index_t yi = rng.uniform(0, d - 2);
    if (yi >= xi) ++yi;
    const index_t x = nbrs[static_cast<std::size_t>(xi)];
    const index_t y = nbrs[static_cast<std::size_t>(yi)];
    // Squares through this wedge: common(x, y) − 1 (c itself is common).
    acc +=
        static_cast<double>(sorted_common(a.row_cols(x), a.row_cols(y)) - 1);
  }
  return {acc / static_cast<double>(samples) *
              static_cast<double>(total_wedges) / 4.0,
          samples};
}

} // namespace kronlab::graph
