// kronlab/graph/traversal.hpp
//
// Breadth-first search and connected components.

#pragma once

#include <vector>

#include "kronlab/graph/graph.hpp"

namespace kronlab::graph {

/// Unreachable marker in BFS distance vectors.
inline constexpr index_t unreachable = -1;

/// Hop distances from `source` (Def: hops_A(source, ·)); `unreachable` for
/// vertices in other components.
std::vector<index_t> bfs_distances(const Adjacency& a, index_t source);

/// Connected-component labeling (undirected).
struct Components {
  std::vector<index_t> label; ///< component id per vertex, in [0, count)
  index_t count = 0;          ///< number of components

  /// Sizes of each component.
  [[nodiscard]] std::vector<index_t> sizes() const;
};

Components connected_components(const Adjacency& a);

/// True iff the graph is connected (every vertex reachable; the empty graph
/// counts as connected).
bool is_connected(const Adjacency& a);

} // namespace kronlab::graph
