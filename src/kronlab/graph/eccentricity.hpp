// kronlab/graph/eccentricity.hpp
//
// Eccentricity, diameter and radius via all-sources BFS.  Intended for
// factor-sized graphs and validation of product-level properties on
// small/medium products; O(n·(n+m)).

#pragma once

#include <vector>

#include "kronlab/graph/graph.hpp"

namespace kronlab::graph {

/// Eccentricity of every vertex; `unreachable` (-1) for vertices in a
/// disconnected graph is not representable, so this throws domain_error if
/// the graph is disconnected.
std::vector<index_t> eccentricities(const Adjacency& a);

/// max eccentricity; throws on disconnected input.
index_t diameter(const Adjacency& a);

/// min eccentricity; throws on disconnected input.
index_t radius(const Adjacency& a);

} // namespace kronlab::graph
