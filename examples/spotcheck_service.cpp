// spotcheck_service — validating an analytics engine by random probes.
//
// A common deployment of the paper's generators: the graph is too large to
// verify exhaustively, so the harness streams it to the system under test
// and then *spot-checks* randomly sampled vertices and edges against the
// exact oracle.  Any disagreement indicts the SUT with a concrete witness
// (vertex/edge id + expected vs reported value).
//
// The "system under test" here is a small in-memory analytics engine that
// recomputes butterfly statistics from its own copy of the graph — with an
// injected fault: it silently drops its highest-degree vertex's last
// adjacency entry (a classic off-by-one ingestion bug).

#include <cstdio>
#include <vector>

#include "kronlab/kronlab.hpp"

using namespace kronlab;

namespace {

/// A toy analytics engine: ingests streamed edges, answers queries.
class SystemUnderTest {
public:
  explicit SystemUnderTest(index_t n, bool inject_fault)
      : n_(n), fault_(inject_fault) {}

  void ingest(index_t p, index_t q) { edges_.emplace_back(p, q); }

  void finalize() {
    if (fault_ && !edges_.empty()) {
      edges_.pop_back(); // the bug: last streamed edge never lands
    }
    adj_ = graph::from_undirected_edges(n_, edges_);
    squares_ = graph::vertex_butterflies(adj_);
    edge_squares_ = graph::edge_butterflies(adj_);
  }

  [[nodiscard]] count_t vertex_squares(index_t p) const {
    return squares_[p];
  }
  [[nodiscard]] count_t edge_squares(index_t p, index_t q) const {
    return edge_squares_.at(p, q);
  }

private:
  index_t n_;
  bool fault_;
  std::vector<std::pair<index_t, index_t>> edges_;
  graph::Adjacency adj_;
  grb::Vector<count_t> squares_;
  grb::Csr<count_t> edge_squares_;
};

int spot_check(const kron::GroundTruthOracle& oracle,
               const SystemUnderTest& sut, int probes, Rng& rng) {
  int failures = 0;
  for (int t = 0; t < probes; ++t) {
    const auto v = oracle.sample_vertex(rng);
    const count_t got = sut.vertex_squares(v.p);
    if (got != v.squares) {
      if (failures++ == 0) {
        std::printf("    witness: vertex %lld expected %lld got %lld\n",
                    static_cast<long long>(v.p),
                    static_cast<long long>(v.squares),
                    static_cast<long long>(got));
      }
    }
    const auto e = oracle.sample_edge(rng);
    const count_t got_e = sut.edge_squares(e.p, e.q);
    if (got_e != e.squares) {
      if (failures++ == 1) {
        std::printf("    witness: edge (%lld,%lld) expected %lld got %lld\n",
                    static_cast<long long>(e.p),
                    static_cast<long long>(e.q),
                    static_cast<long long>(e.squares),
                    static_cast<long long>(got_e));
      }
    }
  }
  return failures;
}

} // namespace

int main() {
  std::printf("== spot-check validation with the ground-truth oracle ==\n\n");

  Rng rng(2468);
  const auto kp = kron::BipartiteKronecker::assumption_i(
      gen::random_nonbipartite_connected(10, 24, rng),
      gen::connected_random_bipartite(8, 8, 28, rng));
  std::printf("benchmark graph: %lld vertices, %lld edges\n",
              static_cast<long long>(kp.num_vertices()),
              static_cast<long long>(kp.num_edges()));

  const kron::GroundTruthOracle oracle(kp);

  for (const bool faulty : {false, true}) {
    SystemUnderTest sut(kp.num_vertices(), faulty);
    kron::EdgeStream(kp).for_each_edge(
        [&](index_t p, index_t q) { sut.ingest(p, q); });
    sut.finalize();

    Rng probe_rng(13);
    const int probes = 200;
    const int failures = spot_check(oracle, sut, probes, probe_rng);
    std::printf("\nSUT (%s): %d/%d probes failed -> %s\n",
                faulty ? "with injected ingestion bug" : "healthy",
                failures, 2 * probes,
                failures == 0 ? "VALIDATED" : "REJECTED");
  }

  std::printf("\n(one dropped edge out of %lld perturbed butterfly counts "
              "widely enough for\nrandom probes to catch it — the §I "
              "pitch: without ground truth, a count\nthat is merely "
              "plausible would pass.)\n",
              static_cast<long long>(kp.num_edges()));
  return 0;
}
