// massive_stream — generating a graph too large to hold, with ground truth.
//
// The paper's production use case: emit a massive bipartite graph edge by
// edge (to a file, a socket, or a system under test) while every statistic
// of the *full* graph is known exactly from factor-sized state.  Here we
// stream a ~10M-edge product, computing a streaming histogram of per-edge
// butterfly counts on the fly — without ever allocating the product.

#include <cmath>
#include <cstdio>

#include "kronlab/kronlab.hpp"

using namespace kronlab;

int main() {
  std::printf("== streaming a product too large to materialize ==\n\n");

  // Factors: a heavy-tail bipartite "schema" and a non-bipartite connector.
  Rng rng(1234);
  const auto a = gen::random_nonbipartite_connected(60, 400, rng);
  const auto b = gen::preferential_bipartite(2000, 3000, 12000, rng);
  const auto kp = kron::BipartiteKronecker::raw(a, b);

  const count_t edges = kp.num_edges();
  std::printf("factors: %lld + %lld vertices, %lld + %lld edges\n",
              static_cast<long long>(a.nrows()),
              static_cast<long long>(b.nrows()),
              static_cast<long long>(graph::num_edges(a)),
              static_cast<long long>(graph::num_edges(b)));
  std::printf("product: %s vertices, %s edges (approx %.1f GiB as CSR — "
              "never allocated)\n",
              format_count(kp.num_vertices()).c_str(),
              format_count(edges).c_str(),
              static_cast<double>(2 * edges) * 16.0 / (1 << 30));

  // Exact global statistics from factor space, before streaming a byte.
  Timer t_truth;
  const count_t squares = kron::global_squares(kp);
  std::printf("\nground truth (factor space, %s):\n",
              format_duration(t_truth.seconds()).c_str());
  std::printf("  global 4-cycles: %s\n", format_count(squares).c_str());
  // The heavy-tail factor is disconnected (like real KONECT data), so the
  // Thm 1/2 connectivity rule does not apply; bipartiteness still follows
  // from factor B alone (§III).
  std::printf("  structure: %s (right factor is bipartite)\n",
              graph::is_bipartite(kp.right()) ? "bipartite"
                                              : "non-bipartite");

  // Stream every directed entry with its exact per-edge square count,
  // folding into a log-scale histogram (the kind of profile a validation
  // harness would record).
  Timer t_stream;
  count_t hist[40] = {};
  count_t total_entries = 0;
  count_t square_sum = 0;
  kron::GroundTruthStream stream(kp);
  stream.for_each_entry([&](index_t, index_t, count_t sq) {
    ++total_entries;
    square_sum += sq;
    const int bin =
        sq <= 0 ? 0
                : 1 + static_cast<int>(std::log2(static_cast<double>(sq)));
    ++hist[std::min(bin, 39)];
  });
  const double secs = t_stream.seconds();

  std::printf("\nstreamed %s entries in %s (%.1f Medges/s, with per-edge "
              "ground truth)\n",
              format_count(total_entries).c_str(),
              format_duration(secs).c_str(),
              static_cast<double>(total_entries) / secs / 1e6);

  std::printf("\nper-edge 4-cycle histogram (log2 bins):\n");
  for (int bin = 0; bin < 40; ++bin) {
    if (hist[bin] == 0) continue;
    if (bin == 0) {
      std::printf("  %10s : %s\n", "0", format_count(hist[bin]).c_str());
    } else {
      std::printf("  %4lld-%-5lld : %s\n",
                  static_cast<long long>(count_t{1} << (bin - 1)),
                  static_cast<long long>((count_t{1} << bin) - 1),
                  format_count(hist[bin]).c_str());
    }
  }

  // Consistency: Σ over directed entries = 8 · #squares.
  const bool ok = square_sum == 8 * squares;
  std::printf("\nstream/formula consistency: sum(edge squares) = %s = 8 x "
              "%s  -> %s\n",
              format_count(square_sum).c_str(),
              format_count(squares).c_str(), ok ? "exact" : "MISMATCH");
  return ok ? 0 : 1;
}
