// quickstart — the 60-second tour of kronlab.
//
// Build a connected bipartite Kronecker graph from two small factors,
// read off exact statistics from the factors alone, and spot-check them
// against direct counting on the materialized product.

#include <cstdio>

#include "kronlab/kronlab.hpp"

using namespace kronlab;

int main() {
  // 1. Two small factors.  Assumption 1(ii): both bipartite + connected;
  //    the library adds the self loops to A for you (Thm 2 guarantees the
  //    product is bipartite AND connected).
  const auto a = gen::star_graph(3);            // 1 hub + 3 leaves
  const auto b = gen::complete_bipartite(3, 4); // K_{3,4}
  const auto kp = kron::BipartiteKronecker::assumption_ii(a, b);

  std::printf("product C = (A+I) (x) B: %lld vertices, %lld edges\n",
              static_cast<long long>(kp.num_vertices()),
              static_cast<long long>(kp.num_edges()));

  // 2. Predictions from the factors (never touching C).
  const auto pred = kron::predict(kp);
  std::printf("predicted: %s, %s\n",
              pred.bipartite ? "bipartite" : "non-bipartite",
              pred.connected ? "connected" : "disconnected");

  // 3. Exact ground truth in factor space.
  std::printf("global 4-cycles (ground truth): %lld\n",
              static_cast<long long>(kron::global_squares(kp)));

  const auto s = kron::vertex_squares(kp); // factored: O(1) point queries
  const auto d = kron::degrees(kp);
  std::printf("vertex 0: degree %lld, 4-cycles %lld\n",
              static_cast<long long>(d.at(0)),
              static_cast<long long>(s.at(0)));

  // 4. Per-edge ground truth, streamed without materializing C.
  count_t max_edge_squares = 0;
  kron::GroundTruthStream stream(kp);
  stream.for_each_entry([&](index_t, index_t, count_t sq) {
    max_edge_squares = std::max(max_edge_squares, sq);
  });
  std::printf("max 4-cycles on any edge: %lld\n",
              static_cast<long long>(max_edge_squares));

  // 5. Trust, but verify: materialize C and recount directly.
  const auto c = kp.materialize();
  std::printf("direct recount on materialized C: %lld (%s)\n",
              static_cast<long long>(graph::global_butterflies(c)),
              graph::global_butterflies(c) == kron::global_squares(kp)
                  ? "matches"
                  : "MISMATCH");
  std::printf("measured: %s, %s\n",
              graph::is_bipartite(c) ? "bipartite" : "non-bipartite",
              graph::is_connected(c) ? "connected" : "disconnected");
  return 0;
}
