// graphblas_style — the paper's §I GraphBLAS pitch, written out.
//
// "The linear algebraic ground truth formulas provided in this work lend
//  themselves nicely to an implementation using GraphBLAS... a relatively
//  simple GraphBLAS code could be used to sample 4-cycle counts at edges
//  and vertices without materializing the full Kronecker products."
//
// This example *is* that code: every ground-truth quantity is assembled
// from the mini-GraphBLAS kernels directly (mxm, masked mxm, eWise ops,
// reductions, Kronecker products of small vectors) — no kron:: engine
// calls — and then checked against both the engine and direct counting.

#include <cstdio>

#include "kronlab/kronlab.hpp"

using namespace kronlab;
using grb::Vector;

int main() {
  std::printf("== ground truth via raw GraphBLAS-style kernels ==\n\n");

  // Factors: M = A + I (Assumption 1(ii)), B bipartite.
  const auto a = gen::star_graph(3);
  const auto b = gen::crown_graph(3);
  const auto m = grb::add_identity(a); // GrB_eWiseAdd(A, I)

  // --- factor-level statistics, kernel by kernel -----------------------
  // d = M·1                 (GrB_reduce by row)
  const auto d_m = grb::reduce_rows(m);
  const auto d_b = grb::reduce_rows(b);
  // w² = M·(M·1)            (two GrB_mxv)
  const auto w2_m = grb::mxv(m, d_m);
  const auto w2_b = grb::mxv(b, d_b);
  // M²                      (GrB_mxm)
  const auto m2 = grb::mxm(m, m);
  const auto b2 = grb::mxm(b, b);
  // diag(M⁴) = row-wise dot of M² with itself (M symmetric):
  Vector<count_t> diag4_m(m.nrows(), 0);
  for (index_t i = 0; i < m.nrows(); ++i) {
    count_t acc = 0;
    for (const count_t v : m2.row_vals(i)) acc += v * v;
    diag4_m[i] = acc;
  }
  Vector<count_t> diag4_b(b.nrows(), 0);
  for (index_t k = 0; k < b.nrows(); ++k) {
    count_t acc = 0;
    for (const count_t v : b2.row_vals(k)) acc += v * v;
    diag4_b[k] = acc;
  }

  // --- vertex squares: s_C = ½(diag(C⁴) − d∘d − w² + d), factored -------
  // Every term is a Kronecker product of the factor vectors above
  // (GrB_kronecker on vectors).
  const auto t1 = grb::kron(diag4_m, diag4_b);
  const auto t2 = grb::kron(grb::ewise_mult(d_m, d_m),
                            grb::ewise_mult(d_b, d_b));
  const auto t3 = grb::kron(w2_m, w2_b);
  const auto t4 = grb::kron(d_m, d_b);
  Vector<count_t> s_c(t1.size());
  for (index_t p = 0; p < s_c.size(); ++p) {
    s_c[p] = (t1[p] - t2[p] - t3[p] + t4[p]) / 2;
  }
  const count_t global = grb::reduce(s_c) / 4;

  // --- edge squares sampled without materializing C --------------------
  // (M³∘M) via masked mxm — the §I "sample at edges" kernel.
  const auto m3m = grb::mxm_masked(m, m2, m);
  const auto b3b = grb::mxm_masked(b, b2, b);
  // Probe one product edge: (i,j)=(0,1) is an M edge (hub-leaf + loop
  // diagonal untouched), (k,l)=(0,4) is a crown edge of B.
  const index_t i = 0, j = 1, k = 0, l = 4;
  const count_t probe = m3m.at(i, j) * b3b.at(k, l) - d_m[i] * d_b[k] -
                        d_m[j] * d_b[l] + 1;

  // --- report & verify --------------------------------------------------
  const auto kp = kron::BipartiteKronecker::assumption_ii(a, b);
  const count_t engine_global = kron::global_squares(kp);
  const auto c = kp.materialize();
  const count_t direct_global = graph::global_butterflies(c);
  const auto sh = kp.shape();
  const count_t direct_probe =
      graph::edge_butterflies(c).at(sh.row(i, k), sh.col(j, l));

  std::printf("global 4-cycles : raw kernels %lld | engine %lld | direct "
              "%lld\n",
              static_cast<long long>(global),
              static_cast<long long>(engine_global),
              static_cast<long long>(direct_global));
  std::printf("sampled edge ◇  : raw kernels %lld | direct %lld\n",
              static_cast<long long>(probe),
              static_cast<long long>(direct_probe));

  const bool ok = global == engine_global && global == direct_global &&
                  probe == direct_probe;
  std::printf("\n%s\n", ok ? "all three paths agree — the §I GraphBLAS "
                             "formulation is executable as-is."
                           : "MISMATCH");
  return ok ? 0 : 1;
}
