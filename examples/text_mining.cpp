// text_mining — term–document benchmark generation (the paper's first
// motivating domain: "text analysis (term-document matrices)").
//
// A search-quality team needs a large term×document graph with known
// co-occurrence structure to calibrate similarity thresholds:
//   * butterflies (two terms sharing two documents) drive co-occurrence
//     scores,
//   * the wing decomposition identifies robust topical cores,
//   * local closure separates topical terms from connector terms.
//
// We build a topic-structured factor (planted blocks = topics), expand it
// with a vocabulary template via the Kronecker product, and read every
// calibration quantity exactly; the smaller wing analysis is measured on
// the materialized product and cross-checked against the oracle's edge
// counts.

#include <cstdio>
#include <map>

#include "kronlab/kronlab.hpp"

using namespace kronlab;

int main() {
  std::printf("== term-document benchmark with exact co-occurrence ground "
              "truth ==\n\n");

  Rng rng(31415);
  // Factor A: 3 topics — terms 0-17 × documents 0-14, block-diagonal-ish.
  gen::BterParams topics;
  topics.blocks = 3;
  topics.block_u = 6;  // terms per topic
  topics.block_w = 5;  // docs per topic
  topics.p_in = 0.55;
  topics.p_out = 0.04;
  const auto a = gen::bter_bipartite(topics, rng);

  // Factor B: vocabulary/corpus template with heavy-tail term usage.
  const auto b = gen::preferential_bipartite(14, 20, 60, rng);

  const auto kp = kron::BipartiteKronecker::raw(grb::add_identity(a), b);
  const kron::GroundTruthOracle oracle(kp);

  std::printf("corpus graph: %s term/doc vertices, %s occurrences\n",
              format_count(kp.num_vertices()).c_str(),
              format_count(kp.num_edges()).c_str());

  // --- calibration quantities, all exact -------------------------------
  std::printf("\nexact co-occurrence statistics:\n");
  std::printf("  butterflies (pairwise co-occurrence units): %s\n",
              format_count(kron::global_squares(kp)).c_str());
  std::printf("  3-paths (open co-occurrence chances)      : %s\n",
              format_count(kron::product_three_paths(kp)).c_str());
  std::printf("  Robins-Alexander closure                  : %.4f\n",
              kron::product_robins_alexander_cc(kp));

  // Degree histogram ground truth — the vocabulary curve.
  const auto hist = oracle.degree_histogram();
  std::printf("\nterm/doc frequency curve (exact degree histogram, "
              "top rows):\n");
  int shown = 0;
  for (auto it = hist.rbegin(); it != hist.rend() && shown < 5;
       ++it, ++shown) {
    std::printf("    degree %6lld : %lld vertices\n",
                static_cast<long long>(it->first),
                static_cast<long long>(it->second));
  }

  // Closure separates topical terms (high) from connectors (low).
  count_t topical = 0, connectors = 0;
  for (index_t p = 0; p < kp.num_vertices(); ++p) {
    const auto r = oracle.vertex(p);
    if (r.degree < 2) continue;
    if (r.closure > 0.3) {
      ++topical;
    } else if (r.closure < 0.05) {
      ++connectors;
    }
  }
  std::printf("\nexact closure split: %s topical vertices (>0.3), %s "
              "connectors (<0.05)\n",
              format_count(topical).c_str(),
              format_count(connectors).c_str());

  // --- wing cores, measured and cross-checked --------------------------
  const auto c = kp.materialize();
  const auto wings = graph::wing_decomposition(c);
  std::map<count_t, count_t> wing_hist;
  for (index_t i = 0; i < c.nrows(); ++i) {
    const auto cols = wings.wing.row_cols(i);
    const auto vals = wings.wing.row_vals(i);
    for (std::size_t e = 0; e < cols.size(); ++e) {
      if (i < cols[e]) ++wing_hist[vals[e]];
    }
  }
  std::printf("\ntopical-core (wing) spectrum: max wing = %lld; top "
              "levels:",
              static_cast<long long>(wings.max_wing));
  int rows = 0;
  for (auto it = wing_hist.rbegin(); it != wing_hist.rend() && rows < 4;
       ++it, ++rows) {
    std::printf(" k=%lld:%lld", static_cast<long long>(it->first),
                static_cast<long long>(it->second));
  }
  std::printf("\n");

  // Cross-check: oracle edge counts vs the wing input supports.
  const auto sq = graph::edge_butterflies(c);
  count_t checked = 0;
  Rng probe(99);
  for (int t = 0; t < 100; ++t) {
    const auto e = oracle.sample_edge(probe);
    if (sq.at(e.p, e.q) != e.squares) {
      std::printf("MISMATCH at edge (%lld,%lld)\n",
                  static_cast<long long>(e.p),
                  static_cast<long long>(e.q));
      return 1;
    }
    ++checked;
  }
  std::printf("\noracle cross-check: %lld random edge probes all exact.\n",
              static_cast<long long>(checked));
  return 0;
}
