// recommender_benchmark — a domain scenario from the paper's introduction:
// user–item rating graphs.
//
// A recommender-systems team wants a massive user×item bipartite benchmark
// whose community structure (genre clusters) and co-rating statistics
// (butterflies drive similarity scores) are known exactly.  We build one:
//
//   A = small user-archetype × genre graph with a planted dense community,
//   B = small item-catalog template,
//   C = (A + I_A) ⊗ B  — the benchmark graph.
//
// The harness reports the exact community densities (Thm 7 / Cors 1–2) and
// butterfly statistics the team can score their algorithms against — and
// verifies them by direct measurement on the materialized product.

#include <cstdio>

#include "kronlab/kronlab.hpp"

using namespace kronlab;

namespace {

kron::FactorCommunity prefix_community(const graph::Adjacency& g,
                                       index_t n_u, index_t r, index_t t) {
  const auto part = graph::two_color(g).value();
  graph::BipartiteSubset s;
  for (index_t i = 0; i < r; ++i) s.r.push_back(i);
  for (index_t k = 0; k < t; ++k) s.t.push_back(n_u + k);
  return kron::measure_factor_community(g, part, s);
}

} // namespace

int main() {
  std::printf("== recommender benchmark with exact ground truth ==\n\n");

  // Factor A: 12 user archetypes × 10 genres; archetypes 0-3 rate genres
  // 0-2 heavily (the planted "sci-fi fans" community).
  Rng rng(777);
  gen::PlantedCommunity pa{.nu = 12,
                           .nw = 10,
                           .r = 4,
                           .t = 3,
                           .p_in = 0.85,
                           .p_out = 0.08};
  auto a = gen::planted_community_bipartite(pa, rng);
  // Factor B: an item-catalog template with heavy-tail popularity.
  auto b = gen::preferential_bipartite(16, 24, 96, rng);

  const auto kp = kron::BipartiteKronecker::raw(grb::add_identity(a), b);
  std::printf("benchmark graph: %s users+items, %s ratings\n",
              format_count(kp.num_vertices()).c_str(),
              format_count(kp.num_edges()).c_str());

  // --- ground-truth co-rating (butterfly) statistics -------------------
  const count_t squares = kron::global_squares(kp);
  std::printf("\nco-rating structure:\n");
  std::printf("  global butterflies (ground truth): %s\n",
              format_count(squares).c_str());
  const auto s = kron::vertex_squares(kp);
  count_t hub = 0;
  for (index_t p = 0; p < s.size(); ++p) hub = std::max(hub, s.at(p));
  std::printf("  max butterflies at one vertex    : %s\n",
              format_count(hub).c_str());

  // --- ground-truth community structure (Thm 7) ------------------------
  const auto fa = prefix_community(a, pa.nu, pa.r, pa.t);
  // Community in B: the 4 most popular items on each side of the template.
  const auto fb = prefix_community(b, 16, 4, 4);
  const auto pc = kron::product_community(fa, fb);
  std::printf("\nplanted community in C (exact, Thm 7):\n");
  std::printf("  |R_C| x |T_C| = %lld x %lld\n",
              static_cast<long long>(pc.r_size),
              static_cast<long long>(pc.t_size));
  std::printf("  internal ratings: %s   external ratings: %s\n",
              format_count(pc.m_in).c_str(), format_count(pc.m_out).c_str());
  std::printf("  rho_in = %.4f (Cor 1 floor %.4f)   rho_out = %.5f (Cor 2 "
              "cap %.5f)\n",
              pc.rho_in(), kron::cor1_lower_bound(fa, fb), pc.rho_out(),
              kron::cor2_upper_bound(fa, fb));

  // --- verification on the materialized product ------------------------
  const auto c = kp.materialize();
  const auto part_b = graph::two_color(b).value();
  const auto sc = kron::product_subset(fa, fb, part_b, b.nrows());
  const auto ind = sc.indicator(c.nrows());
  const count_t m_in_direct = graph::internal_edges(c, ind);
  const count_t m_out_direct = graph::external_edges(c, ind);
  const count_t squares_direct = graph::global_butterflies(c);

  const bool ok = m_in_direct == pc.m_in && m_out_direct == pc.m_out &&
                  squares_direct == squares;
  std::printf("\nverification vs direct measurement: %s\n",
              ok ? "all exact" : "MISMATCH");
  std::printf("  butterflies %s/%s, m_in %s/%s, m_out %s/%s\n",
              format_count(squares_direct).c_str(),
              format_count(squares).c_str(),
              format_count(m_in_direct).c_str(),
              format_count(pc.m_in).c_str(),
              format_count(m_out_direct).c_str(),
              format_count(pc.m_out).c_str());
  return ok ? 0 : 1;
}
