// validate_butterfly_counter — the paper's motivating use case (§I).
//
// "If an implementation of a complex graph statistic has a minor error
//  (say a global count of 4-cycles is off by 1), it is difficult to know,
//  without a competing implementation."
//
// This example is that validation harness: it generates bipartite Kronecker
// graphs with exact ground truth, runs a *system under test* (two counters:
// a correct one and one with a classic off-by-one wedge bug), and reports
// which implementation survives.

#include <cstdio>
#include <functional>
#include <vector>

#include "kronlab/kronlab.hpp"

using namespace kronlab;

namespace {

// System under test #1: the library's wedge counter (correct).
count_t counter_correct(const graph::Adjacency& c) {
  return graph::global_butterflies(c);
}

// System under test #2: a buggy counter.  Wedge enumeration visits every
// square once per *ordered* diagonal endpoint — four times in total (two
// diagonals × two endpoints).  This implementation "knows" each diagonal
// is seen from both endpoints and divides by 2... forgetting that the
// OTHER diagonal also enumerates the same square.  A classic symmetry
// slip: the result is exactly 2× on every input, unit tests on a single
// hand-counted wedge pass, and only an independent ground truth exposes
// it.
count_t counter_buggy(const graph::Adjacency& c) {
  count_t acc = 0;
  std::vector<count_t> cnt(static_cast<std::size_t>(c.nrows()), 0);
  std::vector<index_t> touched;
  for (index_t i = 0; i < c.nrows(); ++i) {
    touched.clear();
    for (const index_t j : c.row_cols(i)) {
      for (const index_t k : c.row_cols(j)) {
        if (k == i) continue;
        if (cnt[static_cast<std::size_t>(k)] == 0) touched.push_back(k);
        ++cnt[static_cast<std::size_t>(k)];
      }
    }
    for (const index_t k : touched) {
      const count_t w = cnt[static_cast<std::size_t>(k)];
      acc += w * (w - 1) / 2;
      cnt[static_cast<std::size_t>(k)] = 0;
    }
  }
  return acc / 2; // BUG: should divide by 4
}

struct Sut {
  const char* name;
  std::function<count_t(const graph::Adjacency&)> fn;
};

} // namespace

int main() {
  std::printf("== validating 4-cycle counters against Kronecker ground "
              "truth ==\n\n");

  const Sut suts[] = {{"wedge counter (library)", counter_correct},
                      {"wedge counter (buggy)", counter_buggy}};

  Rng rng(2020);
  int failures[2] = {0, 0};
  const int kTrials = 6;
  for (int trial = 0; trial < kTrials; ++trial) {
    // Fresh validation instance with known ground truth.
    const auto a = gen::random_nonbipartite_connected(
        7 + trial, 16 + 2 * trial, rng);
    const auto b = gen::connected_random_bipartite(5, 6, 14 + trial, rng);
    const auto kp = kron::BipartiteKronecker::assumption_i(a, b);
    const count_t truth = kron::global_squares(kp);
    const auto c = kp.materialize();

    std::printf("instance %d: |V_C|=%lld |E_C|=%lld  ground truth=%lld\n",
                trial, static_cast<long long>(kp.num_vertices()),
                static_cast<long long>(kp.num_edges()),
                static_cast<long long>(truth));
    for (int s = 0; s < 2; ++s) {
      const count_t got = suts[s].fn(c);
      const bool ok = got == truth;
      failures[s] += !ok;
      std::printf("    %-28s -> %12lld  %s\n", suts[s].name,
                  static_cast<long long>(got), ok ? "OK" : "WRONG");
    }
  }

  std::printf("\nverdict:\n");
  for (int s = 0; s < 2; ++s) {
    std::printf("  %-28s failed %d/%d instances%s\n", suts[s].name,
                failures[s], kTrials,
                failures[s] == 0 ? "  (validated)" : "  (rejected)");
  }
  // The harness succeeded iff it separated the two implementations.
  return (failures[0] == 0 && failures[1] > 0) ? 0 : 1;
}
