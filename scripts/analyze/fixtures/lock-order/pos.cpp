// Positive fixture: two functions take the same pair of locks in
// opposite orders — the classic deadlock precondition.
// ANALYZE-EXPECT: lock-order 1

struct Mutex {
  void lock();
  void unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

struct Engine {
  Mutex alpha_mu;
  Mutex beta_mu;
  void forward();
  void backward();
};

void Engine::forward() {
  MutexLock a(alpha_mu);
  MutexLock b(beta_mu);
}

void Engine::backward() {
  MutexLock b(beta_mu);
  MutexLock a(alpha_mu);
}
