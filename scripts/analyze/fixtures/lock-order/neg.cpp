// Negative fixture: every path takes alpha before beta (including one
// edge introduced through a call), so the graph is acyclic.
// ANALYZE-EXPECT: lock-order 0

struct Mutex {
  void lock();
  void unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

struct Engine {
  Mutex alpha_mu;
  Mutex beta_mu;
  void forward();
  void also_forward();
  void take_beta();
};

void Engine::forward() {
  MutexLock a(alpha_mu);
  MutexLock b(beta_mu);
}

void Engine::take_beta() {
  MutexLock b(beta_mu);
}

void Engine::also_forward() {
  MutexLock a(alpha_mu);
  take_beta();
}
