// Positive fixture: one atomic site with no audit entry, plus (via
// pos.audit) one stale entry whose site no longer exists.
// ANALYZE-EXPECT: memory-order 2
#include <atomic>

struct State {
  std::atomic<int> flag;
};

int load_flag(State& s) {
  return s.flag.load(std::memory_order_relaxed);
}
