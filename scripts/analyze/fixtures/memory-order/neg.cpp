// Negative fixture: the relaxed load is covered by a justified audit
// entry with a matching site count.
// ANALYZE-EXPECT: memory-order 0
#include <atomic>

struct State {
  std::atomic<int> flag;
};

int load_flag(State& s) {
  return s.flag.load(std::memory_order_relaxed);
}
