// Positive fixture: a checksum result dropped on the floor, once as a
// plain expression statement and once laundered through a (void) cast.
// ANALYZE-EXPECT: unchecked-read 2

unsigned long fnv1a64(const void* data, unsigned long nbytes);

void process() {
  fnv1a64(nullptr, 0);
  (void)fnv1a64(nullptr, 0);
}
