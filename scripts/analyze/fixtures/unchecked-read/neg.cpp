// Negative fixture: results consumed, or a discard justified inline.
// ANALYZE-EXPECT: unchecked-read 0

unsigned long fnv1a64(const void* data, unsigned long nbytes);

unsigned long consume() {
  const unsigned long h = fnv1a64(nullptr, 0);
  if (fnv1a64(nullptr, 0) != 0) {
    return 1;
  }
  // kronlab-analyze: allow(unchecked-read) warming the page cache only
  fnv1a64(nullptr, 0);
  return h;
}
