// Positive fixture tree: stray env literal, stray magic string, stray
// char-array magic, plus two registered-but-undocumented names
// (the segment magic and BATC).
// ANALYZE-EXPECT: registry 5
#include <cstdlib>

const char* trace_env() {
  return std::getenv("KRONLAB_TRACE");
}

const char* seg_magic_string() {
  return "KRNLSEG1";
}

constexpr char kLocalMagic[8] = {'K', 'R', 'N', 'L', 'S', 'E', 'G', '1'};
