// Mini registry for the positive fixture tree.
#pragma once

namespace kronlab::env {
inline constexpr const char* kTrace = "KRONLAB_TRACE";
} // namespace kronlab::env

namespace kronlab::magic {
inline constexpr char kSeg1[8] = {'K', 'R', 'N', 'L', 'S', 'E', 'G', '1'};
} // namespace kronlab::magic
