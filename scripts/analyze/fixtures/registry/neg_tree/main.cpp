// Negative fixture tree: constants come from the registry; the magic
// only ever appears embedded in a longer diagnostic string, which the
// rule deliberately ignores.
// ANALYZE-EXPECT: registry 0
#include <cstdlib>

#include "registry.hpp"

const char* trace_env() {
  return std::getenv(kronlab::env::kTrace);
}

const char* diagnostic() {
  return "stream is not a KRNLSEG1 segment (bad magic)";
}

const char* seg_magic() {
  return kronlab::magic::kSeg1;
}
