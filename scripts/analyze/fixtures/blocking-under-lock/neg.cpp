// Negative fixture: CondVar::wait releases the mutex (exempt); the send
// happens after the guard's block closes; and the deliberate
// write-under-write-mutex carries a justified allow marker.
// ANALYZE-EXPECT: blocking-under-lock 0

struct Mutex {
  void lock();
  void unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};
struct CondVar {
  void wait(Mutex& mu);
};
struct Comm {
  void send(int to, int tag);
};
struct Transport {};
void write_frame(Transport& t);

struct Node {
  Mutex mu;
  Mutex write_mu;
  CondVar cv;
  Comm comm;
  Transport transport;
  bool ready;
  void drain();
  void flush();
};

void Node::drain() {
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
  }
  comm.send(0, 1);
}

void Node::flush() {
  MutexLock lock(write_mu);
  // kronlab-analyze: allow(blocking-under-lock) single writer per peer
  write_frame(transport);
}
