// Positive fixture: a blocking wire call made directly under a lock,
// and one reached through a helper one call level down.
// ANALYZE-EXPECT: blocking-under-lock 2

struct Mutex {
  void lock();
  void unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};
struct Comm {
  void send(int to, int tag);
};

struct Node {
  Mutex mu;
  Comm comm;
  void bad_direct();
  void helper();
  void bad_via_helper();
};

void Node::bad_direct() {
  MutexLock lock(mu);
  comm.send(0, 1);
}

void Node::helper() {
  comm.send(0, 1);
}

void Node::bad_via_helper() {
  MutexLock lock(mu);
  helper();
}
