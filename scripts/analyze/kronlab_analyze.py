#!/usr/bin/env python3
"""kronlab_analyze — semantic AST-level analysis for the kronlab tree.

Five project-specific rules (see `--list-rules`), two engines:

* ``--engine internal`` (the CI gate): a dependency-free token/scope
  frontend.  Deterministic everywhere, including bare containers.
* ``--engine clang``: libclang Python bindings when importable.  If the
  bindings or the shared library are absent the run is SKIPPED loudly
  (exit 0 with a clear banner), never silently passed — the internal
  engine remains the gate either way.

Usage:
  kronlab_analyze.py --compdb build/compile_commands.json   # whole tree
  kronlab_analyze.py --rules lock-order,registry            # subset
  kronlab_analyze.py --self-test                            # fixtures
  kronlab_analyze.py --emit-audit > scripts/analyze/memory_order.audit

Exit codes: 0 clean (or loud skip), 1 findings, 2 usage/internal error.

Suppression: `// kronlab-analyze: allow(<rule>) <justification>` on the
finding's line or the line above.  The justification is mandatory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from analyzer import RULES, __version__  # noqa: E402
from analyzer import clang_frontend, internal_frontend  # noqa: E402
from analyzer import rules as rules_mod  # noqa: E402
from analyzer.ir import Finding  # noqa: E402
from analyzer.project import (AllowIndex, files_from_compdb,  # noqa: E402
                              files_from_tree, headers_for, repo_root,
                              validate_rules)

RULE_HELP = {
    "lock-order":
        "Builds the cross-TU lock acquisition graph over annotated "
        "common/sync.hpp mutexes (RAII guards, manual lock/unlock, and "
        "one call level) and fails on cycles — the deadlock precondition.",
    "blocking-under-lock":
        "Flags send/recv/poll/fsync/fdatasync/sleep_for/connect/"
        "write_frame and friends reachable while a MutexLock is live. "
        "CondVar::wait is exempt (it releases the mutex).",
    "memory-order":
        "Every atomic operation in src/ must have a justified entry in "
        "scripts/analyze/memory_order.audit keyed by (file, var, op, "
        "order) with a site count; flags unaudited sites, stale entries, "
        "and count drift.  --emit-audit writes a skeleton.",
    "unchecked-read":
        "Checksum/parse/verify results ([[nodiscard]] APIs in io/, grb/, "
        "serve/protocol, dist/comm) must be consumed: flags plain "
        "discards and (void)-cast discards in src/, tools/, bench/.",
    "registry":
        "KRONLAB_* env-var literals and KRNL* wire magics are defined "
        "exactly once, in common/registry.hpp, and documented in "
        "README.md/DESIGN.md; flags stray literals and undocumented "
        "names.",
}


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="kronlab_analyze.py",
                                 description=__doc__.split("\n\n")[0])
    ap.add_argument("--compdb", help="compile_commands.json to take the "
                                     "file list from")
    ap.add_argument("--root", help="repository root (default: auto)")
    ap.add_argument("--engine", choices=("auto", "internal", "clang"),
                    default="auto",
                    help="auto = internal (the deterministic gate)")
    ap.add_argument("--rules", help="comma-separated subset of rules")
    ap.add_argument("--audit",
                    help="memory-order audit file (default: "
                         "scripts/analyze/memory_order.audit)")
    ap.add_argument("--report", help="write a JSON report here")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture battery on every available "
                         "engine")
    ap.add_argument("--emit-audit", action="store_true",
                    help="print a memory-order audit skeleton for the "
                         "current tree and exit")
    ap.add_argument("--max-findings", type=int, default=200)
    return ap


def list_rules() -> None:
    print(f"kronlab_analyze {__version__} — rules:")
    for r in RULES:
        print(f"\n  {r}")
        for line in RULE_HELP[r].split(". "):
            line = line.strip()
            if line:
                print(f"      {line.rstrip('.')}.")


def lower(engine: str, files, root, compdb_dir=None):
    if engine == "clang":
        return clang_frontend.lower_files(files, compdb_dir)
    return internal_frontend.lower_files(files)


def analyze_tree(args, engine: str) -> int:
    root = os.path.abspath(args.root or repo_root())
    if args.compdb:
        sources = files_from_compdb(args.compdb)
        files = headers_for(sources, root)
    else:
        files = files_from_tree(root)
    files = [f for f in files if os.path.exists(f)]
    audit = args.audit or os.path.join(root, "scripts", "analyze",
                                       "memory_order.audit")
    compdb_dir = os.path.dirname(os.path.abspath(args.compdb)) \
        if args.compdb else None
    functions, _mutexes = lower(engine, files, root, compdb_dir)
    if args.emit_audit:
        sys.stdout.write(rules_mod.emit_audit_skeleton(
            [fn for fn in functions
             if rules_mod._in_dir(rules_mod._rel(fn.file, root),
                                  ("src",))], root))
        return 0
    selected = validate_rules(args.rules.split(",")) if args.rules \
        else list(RULES)
    allow = AllowIndex()
    findings = rules_mod.run_rules(selected, functions, files, root,
                                   allow, audit)
    report = {
        "version": __version__,
        "engine": engine,
        "rules": selected,
        "files": len(files),
        "functions": len(functions),
        "findings": [{"rule": f.rule, "file": rules_mod._rel(f.file, root),
                      "line": f.line, "message": f.message}
                     for f in findings],
    }
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
    for f in findings[:args.max_findings]:
        print(Finding(f.rule, rules_mod._rel(f.file, root), f.line,
                      f.message).render())
    if len(findings) > args.max_findings:
        print(f"... and {len(findings) - args.max_findings} more")
    n = len(findings)
    print(f"kronlab_analyze[{engine}]: {len(files)} files, "
          f"{len(functions)} functions, {n} finding(s)")
    return 1 if findings else 0


# ---------------------------------------------------------------------------
# self-test

EXPECT_RE = __import__("re").compile(
    r"ANALYZE-EXPECT:\s*([a-z-]+)\s+(\d+)")


def _unit_expectations(paths) -> dict:
    want: dict = {}
    for p in paths:
        try:
            with open(p, "r", encoding="utf-8", errors="replace") as f:
                for line in f:
                    m = EXPECT_RE.search(line)
                    if m:
                        want[m.group(1)] = want.get(m.group(1), 0) + \
                            int(m.group(2))
        except OSError:
            pass
    return want


def run_self_test(args) -> int:
    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "fixtures")
    engines = ["internal"]
    ok, why = clang_frontend.available()
    if ok:
        engines.append("clang")
    else:
        print(f"kronlab_analyze: clang engine SKIPPED ({why}); "
              "self-testing the internal engine only")
    failures = 0
    units = 0
    for rule in sorted(os.listdir(fixtures)):
        rule_dir = os.path.join(fixtures, rule)
        if not os.path.isdir(rule_dir):
            continue
        for entry in sorted(os.listdir(rule_dir)):
            path = os.path.join(rule_dir, entry)
            if os.path.isdir(path):
                unit = sorted(
                    os.path.join(path, n) for n in os.listdir(path)
                    if n.endswith((".cpp", ".hpp", ".h")))
                unit_root = path
                audit = os.path.join(path, "memory_order.audit")
            elif entry.endswith(".cpp"):
                unit = [path]
                unit_root = rule_dir
                audit = os.path.splitext(path)[0] + ".audit"
            else:
                continue
            units += 1
            want = {r: n for r, n in _unit_expectations(unit).items()
                    if n > 0}
            for engine in engines:
                try:
                    functions, _m = lower(engine, unit, unit_root)
                except RuntimeError as e:
                    print(f"  SKIP {rule}/{entry} [{engine}]: {e}")
                    continue
                allow = AllowIndex()
                got_list = rules_mod.run_rules(
                    [rule] if rule in RULES else list(RULES),
                    functions, unit, unit_root, allow, audit,
                    scope_all=True)
                got: dict = {}
                for f in got_list:
                    got[f.rule] = got.get(f.rule, 0) + 1
                if got != want:
                    failures += 1
                    print(f"FAIL {rule}/{entry} [{engine}]: "
                          f"expected {want or '{}'}, got {got or '{}'}")
                    for f in got_list:
                        print("    " + Finding(
                            f.rule, os.path.basename(f.file), f.line,
                            f.message).render())
                else:
                    print(f"ok   {rule}/{entry} [{engine}]")
    print(f"self-test: {units} fixture unit(s), "
          f"{len(engines)} engine(s), {failures} failure(s)")
    return 1 if failures else 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        list_rules()
        return 0
    if args.self_test:
        return run_self_test(args)
    engine = args.engine
    if engine == "auto":
        engine = "internal"
    if engine == "clang":
        ok, why = clang_frontend.available()
        if not ok:
            print("=" * 64)
            print("kronlab_analyze: clang engine SKIPPED — libclang is "
                  "not usable here:")
            print(f"  {why}")
            print("The internal engine remains the enforced gate "
                  "(run with --engine internal).")
            print("=" * 64)
            return 0
    try:
        return analyze_tree(args, engine)
    except ValueError as e:
        print(f"kronlab_analyze: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
