"""A small C++ lexer: comments/strings/chars aware, line-accurate.

This is deliberately not a preprocessor — kronlab's sources are
macro-light (the only relevant macros are the thread-safety annotation
wrappers, which the internal frontend treats as plain tokens).  The
lexer's contract is: every identifier, punctuator, string literal, and
char literal in the file appears as a token with a 1-based line number;
comments disappear; string/char literal *contents* are preserved in the
token so rules like `registry` can inspect them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

IDENT = "ident"
NUMBER = "number"
STRING = "string"  # spelling includes quotes
CHAR = "char"      # spelling includes quotes
PUNCT = "punct"


@dataclass(frozen=True)
class Token:
    kind: str
    spelling: str
    line: int

    def __repr__(self) -> str:  # compact, for debugging fixtures
        return f"{self.kind}:{self.spelling}@{self.line}"


_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = (
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")


def tokenize(text: str) -> List[Token]:
    toks: List[Token] = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                i = n if j < 0 else j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                if j < 0:
                    break
                line += text.count("\n", i, j + 2)
                i = j + 2
                continue
        # Preprocessor directives: skip to end of (continued) line, but
        # keep #include targets invisible — rules use the file list, not
        # the include graph.
        if c == "#" and (not toks or toks[-1].line != line):
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    i = n
                    break
                if text[j - 1] == "\\" or (j >= 2 and text[j - 2: j] == "\\\r"):
                    line += 1
                    i = j + 1
                    continue
                i = j  # leave the newline for the main loop
                break
            continue
        # String / char literals (raw strings included).
        if c == 'R' and text.startswith('R"', i):
            j = text.find('"', i + 1)
            delim = text[i + 2: text.find("(", i)]
            close = ")" + delim + '"'
            k = text.find(close, i)
            if k < 0:
                break
            end = k + len(close)
            toks.append(Token(STRING, text[i:end], line))
            line += text.count("\n", i, end)
            i = end
            continue
        if c in "\"'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == c:
                    break
                if text[j] == "\n":
                    break  # unterminated; tolerate
                j += 1
            end = min(j + 1, n)
            toks.append(Token(STRING if c == '"' else CHAR, text[i:end], line))
            i = end
            continue
        # Identifiers / keywords.
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            toks.append(Token(IDENT, text[i:j], line))
            i = j
            continue
        # Numbers (good enough: consume [0-9a-fA-FxX'.+-uUlL] run).
        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'"):
                j += 1
            toks.append(Token(NUMBER, text[i:j], line))
            i = j
            continue
        # Punctuators, longest-match.
        for p in _PUNCT3:
            if text.startswith(p, i):
                toks.append(Token(PUNCT, p, line))
                i += len(p)
                break
        else:
            for p in _PUNCT2:
                if text.startswith(p, i):
                    toks.append(Token(PUNCT, p, line))
                    i += len(p)
                    break
            else:
                toks.append(Token(PUNCT, c, line))
                i += 1
    return toks
