"""The five project-specific rules, over the engine-neutral IR.

Scope policy (documented in DESIGN.md §15):

* ``lock-order``, ``blocking-under-lock``, ``memory-order`` analyze
  ``src/`` — the library the invariants protect.  Tests and benches
  drive the library from outside the locks.
* ``unchecked-read`` analyzes ``src/``, ``tools/``, ``bench/``; tests
  are exempt (negative-path tests intentionally discard a result while
  expecting a throw).
* ``registry`` analyzes ``src/``, ``tools/``, ``bench/``; tests are
  exempt (golden-byte tests intentionally write raw magic bytes).
"""

from __future__ import annotations

import os
import re
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from . import ir
from .lexer import CHAR, IDENT, STRING, tokenize
from .project import AllowIndex, parse_audit

# ---------------------------------------------------------------------------
# shared helpers


def _rel(path: str, root: str) -> str:
    try:
        return os.path.relpath(path, root)
    except ValueError:
        return path


def _in_dir(rel: str, dirs: Sequence[str]) -> bool:
    return any(rel == d or rel.startswith(d + os.sep) for d in dirs)


def _held_at(fn: ir.Function, upto: int) -> List[Tuple[str, int]]:
    """Locks live just before event index `upto`: (mutex, acquire line)."""
    held: List[Tuple[str, int, Optional[int]]] = []
    for ev in fn.events[:upto]:
        if isinstance(ev, ir.Acquire):
            held.append((ev.mutex, ev.line, ev.scope_end_line))
        elif isinstance(ev, ir.Release):
            for k in range(len(held) - 1, -1, -1):
                if held[k][0] == ev.mutex:
                    held.pop(k)
                    break
    at = fn.events[upto].line if upto < len(fn.events) else None
    out = []
    for mutex, line, scope_end in held:
        if at is not None and scope_end is not None and at > scope_end:
            continue  # RAII guard's block already closed
        out.append((mutex, line))
    return out


# ---------------------------------------------------------------------------
# rule: lock-order


def rule_lock_order(functions: List[ir.Function], root: str,
                    allow: AllowIndex) -> List[ir.Finding]:
    # edges[(a, b)] = list of (file, line, fn-name, how)
    edges: Dict[Tuple[str, str], List[Tuple[str, int, str, str]]] = \
        defaultdict(list)
    by_name: Dict[str, List[ir.Function]] = defaultdict(list)
    direct: Dict[int, Set[str]] = {}
    for fn in functions:
        by_name[fn.name.split("::")[-1]].append(fn)
        direct[id(fn)] = {ev.mutex for ev in fn.events
                          if isinstance(ev, ir.Acquire)}
    for fn in functions:
        for i, ev in enumerate(fn.events):
            if isinstance(ev, ir.Acquire):
                for held, _hline in _held_at(fn, i):
                    if held != ev.mutex:
                        edges[(held, ev.mutex)].append(
                            (fn.file, ev.line, fn.name, "acquires"))
            elif isinstance(ev, ir.Call):
                held_now = _held_at(fn, i)
                if not held_now:
                    continue
                for callee in by_name.get(ev.callee, ()):
                    if "<lambda" in callee.name:
                        continue
                    for m in direct[id(callee)]:
                        for held, _hline in held_now:
                            if held != m:
                                edges[(held, m)].append(
                                    (fn.file, ev.line, fn.name,
                                     f"calls {callee.name} which locks"))
    # cycle detection over the acquisition graph
    graph: Dict[str, Set[str]] = defaultdict(set)
    for (a, b) in edges:
        graph[a].add(b)
    findings: List[ir.Finding] = []
    seen_cycles: Set[Tuple[str, ...]] = set()

    def dfs(node: str, stack: List[str], on_stack: Set[str],
            visited: Set[str]) -> None:
        visited.add(node)
        on_stack.add(node)
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if nxt in on_stack:
                cyc = stack[stack.index(nxt):] + [nxt]
                key = tuple(sorted(set(cyc)))
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    _report_cycle(cyc, edges, allow, findings)
            elif nxt not in visited:
                dfs(nxt, stack, on_stack, visited)
        stack.pop()
        on_stack.discard(node)

    visited: Set[str] = set()
    for node in sorted(graph):
        if node not in visited:
            dfs(node, [], set(), visited)
    return findings


def _report_cycle(cyc: List[str],
                  edges: Dict[Tuple[str, str],
                              List[Tuple[str, int, str, str]]],
                  allow: AllowIndex, findings: List[ir.Finding]) -> None:
    sites = []
    for a, b in zip(cyc, cyc[1:]):
        site = sorted(edges[(a, b)])[0]
        sites.append((a, b) + site)
    # An allow marker on any edge of the cycle declares the ordering
    # intentional (e.g. a leaf mutex never waited on).
    for _a, _b, f, line, _fn, _how in sites:
        if allow.allows(f, line, "lock-order"):
            return
    order = " -> ".join(cyc)
    detail = "; ".join(f"{a}->{b} at {os.path.basename(f)}:{ln} in {fnn}"
                       for a, b, f, ln, fnn, _how in sites)
    f0, l0 = sites[0][2], sites[0][3]
    findings.append(ir.Finding(
        rule="lock-order", file=f0, line=l0,
        message=f"lock acquisition cycle {order} ({detail}) — two threads "
                "taking these locks in opposite orders can deadlock"))


# ---------------------------------------------------------------------------
# rule: blocking-under-lock

BLOCKING_CALLS = {
    "send", "recv", "recv_any", "recv_deadline", "poll", "fsync",
    "fdatasync", "sleep_for", "connect", "accept", "write_frame",
    "read_frame", "join", "allreduce_sum", "allgather", "alltoall",
}


def rule_blocking_under_lock(functions: List[ir.Function], root: str,
                             allow: AllowIndex) -> List[ir.Finding]:
    findings: List[ir.Finding] = []
    by_name: Dict[str, List[ir.Function]] = defaultdict(list)
    for fn in functions:
        by_name[fn.name.split("::")[-1]].append(fn)

    def direct_blocking(fn: ir.Function) -> List[ir.Call]:
        return [ev for ev in fn.events
                if isinstance(ev, ir.Call) and ev.callee in BLOCKING_CALLS]

    for fn in functions:
        for i, ev in enumerate(fn.events):
            if not isinstance(ev, ir.Call):
                continue
            held = _held_at(fn, i)
            if not held:
                continue
            locks = ", ".join(sorted({m for m, _l in held}))
            if ev.callee in BLOCKING_CALLS:
                if allow.allows(fn.file, ev.line, "blocking-under-lock"):
                    continue
                findings.append(ir.Finding(
                    rule="blocking-under-lock", file=fn.file, line=ev.line,
                    message=f"{fn.name} calls blocking "
                            f"{ev.callee}() while holding {locks}"))
                continue
            # one level into project callees (lambdas excluded: they run
            # on other threads)
            for callee in by_name.get(ev.callee, ()):
                if "<lambda" in callee.name or callee.name == fn.name:
                    continue
                for bc in direct_blocking(callee):
                    if allow.allows(fn.file, ev.line,
                                    "blocking-under-lock"):
                        break
                    findings.append(ir.Finding(
                        rule="blocking-under-lock", file=fn.file,
                        line=ev.line,
                        message=f"{fn.name} holds {locks} across call to "
                                f"{callee.name}, which calls blocking "
                                f"{bc.callee}() "
                                f"({os.path.basename(callee.file)}:"
                                f"{bc.line})"))
                    break  # one finding per call site per callee
    return findings


# ---------------------------------------------------------------------------
# rule: memory-order

HOT_DIRS = ("src/kronlab/parallel", "src/kronlab/obs", "src/kronlab/grb",
            "src/kronlab/graph", "src/kronlab/dist")


def rule_memory_order(functions: List[ir.Function], root: str,
                      allow: AllowIndex,
                      audit_path: str) -> List[ir.Finding]:
    entries, findings = parse_audit(audit_path)
    # group sites by (relfile, var, op, order)
    sites: Dict[Tuple[str, str, str, str], List[Tuple[str, int]]] = \
        defaultdict(list)
    for fn in functions:
        rel = _rel(fn.file, root)
        for ev in fn.events:
            if isinstance(ev, ir.AtomicOp):
                sites[(rel, ev.var, ev.op, ev.order)].append(
                    (fn.file, ev.line))
    matched: Set[Tuple[str, str, str, str]] = set()
    for key, locs in sorted(sites.items()):
        rel, var, op, order = key
        entry = entries.get(key)
        if entry is not None:
            matched.add(key)
            if entry.count != len(locs):
                findings.append(ir.Finding(
                    rule="memory-order", file=locs[0][0], line=locs[0][1],
                    message=f"audit entry for {var}.{op}({order}) in {rel} "
                            f"expects {entry.count} site(s) but the tree "
                            f"has {len(locs)} — re-audit "
                            f"(audit line {entry.line})"))
            continue
        unallowed = [(f, ln) for f, ln in locs
                     if not allow.allows(f, ln, "memory-order")]
        if not unallowed:
            continue
        f0, l0 = unallowed[0]
        what = (f"defaulted seq_cst {op}" if order == "seq_cst(default)"
                else f"{op} with memory_order_{order}")
        hot = " on a hot path" if _in_dir(rel, HOT_DIRS) else ""
        findings.append(ir.Finding(
            rule="memory-order", file=f0, line=l0,
            message=f"unaudited atomic: {var}.{what}{hot} "
                    f"({len(unallowed)} site(s) in {rel}) — add a justified "
                    f"entry to {os.path.basename(audit_path)}"))
    for key, entry in sorted(entries.items()):
        if key not in matched:
            findings.append(ir.Finding(
                rule="memory-order", file=audit_path, line=entry.line,
                message=f"stale audit entry: no {entry.var}.{entry.op}"
                        f"({entry.order}) sites remain in {entry.file}"))
    return findings


def emit_audit_skeleton(functions: List[ir.Function], root: str) -> str:
    sites: Dict[Tuple[str, str, str, str], int] = defaultdict(int)
    for fn in functions:
        rel = _rel(fn.file, root)
        for ev in fn.events:
            if isinstance(ev, ir.AtomicOp):
                sites[(rel, ev.var, ev.op, ev.order)] += 1
    lines = ["# memory_order.audit — one line per (file, var, op, order):",
             "#   file | var | op | order | count | justification",
             "# Every atomic site in src/ must be covered and justified;",
             "# kronlab_analyze --rules memory-order enforces both ways.",
             ""]
    for (rel, var, op, order), n in sorted(sites.items()):
        lines.append(f"{rel} | {var} | {op} | {order} | {n} | ")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# rule: unchecked-read

NODISCARD_APIS = {
    "fnv1a64", "fnv1a64_words", "read_binary", "read_binary_file",
    "read_snapshot", "read_snapshot_file", "read_segment", "read_manifest",
    "write_segment", "scan_store", "recv", "recv_deadline", "recv_any",
    "allreduce_sum", "allgather", "alltoall", "decode_request",
    "decode_response", "peek_request_id", "verify_checksum",
}

_STMT_START = {";", "{", "}"}


def rule_unchecked_read(files: List[str], root: str,
                        allow: AllowIndex,
                        scope_all: bool = False) -> List[ir.Finding]:
    findings: List[ir.Finding] = []
    for path in files:
        rel = _rel(path, root)
        if not scope_all and not _in_dir(rel, ("src", "tools", "bench")):
            continue
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                toks = tokenize(f.read())
        except OSError:
            continue
        for i, t in enumerate(toks):
            if t.kind != IDENT or t.spelling not in NODISCARD_APIS:
                continue
            if i + 1 >= len(toks) or toks[i + 1].spelling != "(":
                continue
            # walk back over a receiver chain (`obj.` / `ns::`); two
            # adjacent identifiers mean a declaration, not a call
            j = i - 1
            while j >= 1 and toks[j].spelling in (".", "->", "::") \
                    and toks[j - 1].kind == IDENT:
                j -= 2
            if j < 0:
                continue
            prev = toks[j]
            if prev.kind == IDENT:
                continue  # declaration / return-type / `return f(...)`
            if prev.spelling == "{" and j >= 1 and (
                    (toks[j - 1].kind == IDENT
                     and toks[j - 1].spelling not in ("else", "do", "try"))
                    or toks[j - 1].spelling in (">", "=", ",", "(", "{")):
                continue  # braced initializer, not a block: value consumed
            discard_cast = (
                prev.spelling == ")" and j >= 2
                and toks[j - 1].spelling == "void"
                and toks[j - 2].spelling == "(")
            plain_discard = prev.spelling in _STMT_START
            if discard_cast and j >= 3:
                plain_prev = toks[j - 3]
                if plain_prev.spelling not in _STMT_START:
                    discard_cast = False  # (void) mid-expression: not ours
            if not (discard_cast or plain_discard):
                continue
            if allow.allows(path, t.line, "unchecked-read"):
                continue
            how = ("discards the result via (void) cast" if discard_cast
                   else "ignores the result")
            findings.append(ir.Finding(
                rule="unchecked-read", file=path, line=t.line,
                message=f"call to {t.spelling}() {how}; the return value "
                        "is a checksum/parse/verify result and must be "
                        "consumed"))
    return findings


# ---------------------------------------------------------------------------
# rule: registry

_ENV_RE = re.compile(r'^"(KRONLAB_[A-Z0-9_]*)"$')
_MAGIC_RE = re.compile(r'^"(KRNL[A-Z0-9]{4})"$')
_BATCH_HEX = "0x42415443"


def _registry_names(registry_path: str) -> Tuple[Set[str], Set[str]]:
    """(env names, magic names) declared in registry.hpp."""
    env_names: Set[str] = set()
    magic_names: Set[str] = set()
    try:
        with open(registry_path, "r", encoding="utf-8") as f:
            toks = tokenize(f.read())
    except OSError:
        return env_names, magic_names
    run: List[str] = []
    for t in toks:
        if t.kind == STRING:
            m = _ENV_RE.match(t.spelling)
            if m:
                env_names.add(m.group(1))
        if t.kind == CHAR and len(t.spelling) == 3:
            run.append(t.spelling[1])
            if len(run) == 8:
                word = "".join(run)
                if word.startswith("KRNL"):
                    magic_names.add(word)
                run = []
        elif t.kind != CHAR and t.spelling != ",":
            run = []
    return env_names, magic_names


def rule_registry(files: List[str], root: str,
                  allow: AllowIndex,
                  scope_all: bool = False) -> List[ir.Finding]:
    findings: List[ir.Finding] = []
    registry = os.path.join(root, "src", "kronlab", "common",
                            "registry.hpp")
    if not os.path.exists(registry):
        # fixture trees keep their registry at the tree root
        registry = os.path.join(root, "registry.hpp")
    env_names, magic_names = _registry_names(registry)
    if not env_names or not magic_names:
        findings.append(ir.Finding(
            rule="registry", file=registry, line=1,
            message="registry.hpp missing or defines no KRONLAB_*/KRNL* "
                    "names — the one-definition registry is the rule's "
                    "anchor"))
        return findings
    # 1. stray definitions / literals outside the registry
    for path in files:
        rel = _rel(path, root)
        if not scope_all and not _in_dir(rel, ("src", "tools", "bench")):
            continue
        if os.path.abspath(path) == os.path.abspath(registry):
            continue
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                toks = tokenize(f.read())
        except OSError:
            continue
        run_start = None
        run: List[str] = []
        for i, t in enumerate(toks):
            if t.kind == STRING:
                m = _ENV_RE.match(t.spelling)
                if m and not allow.allows(path, t.line, "registry"):
                    findings.append(ir.Finding(
                        rule="registry", file=path, line=t.line,
                        message=f'env var literal "{m.group(1)}" outside '
                                "common/registry.hpp — use kronlab::env::"))
                m = _MAGIC_RE.match(t.spelling)
                if m and not allow.allows(path, t.line, "registry"):
                    findings.append(ir.Finding(
                        rule="registry", file=path, line=t.line,
                        message=f'wire magic literal "{m.group(1)}" '
                                "outside common/registry.hpp — use "
                                "kronlab::magic::"))
            if t.kind == CHAR and len(t.spelling) == 3:
                if not run:
                    run_start = t.line
                run.append(t.spelling[1])
                if len(run) >= 4 and "".join(run[:4]) == "KRNL":
                    if not allow.allows(path, run_start or t.line,
                                        "registry"):
                        findings.append(ir.Finding(
                            rule="registry", file=path,
                            line=run_start or t.line,
                            message="char-array wire magic spelled outside "
                                    "common/registry.hpp — alias "
                                    "kronlab::magic:: instead"))
                    run = []
            elif t.kind != CHAR and t.spelling != ",":
                run = []
            if t.spelling.lower().startswith(_BATCH_HEX) \
                    and not allow.allows(path, t.line, "registry"):
                findings.append(ir.Finding(
                    rule="registry", file=path, line=t.line,
                    message="BATC batch-magic hex constant outside "
                            "common/registry.hpp — use "
                            "kronlab::magic::kBatchWord"))
    # 2. every registered name documented in README.md / DESIGN.md
    docs = ""
    for doc in ("README.md", "DESIGN.md"):
        try:
            with open(os.path.join(root, doc), "r",
                      encoding="utf-8") as f:
                docs += f.read()
        except OSError:
            pass
    for name in sorted(env_names | magic_names | {"BATC"}):
        if name not in docs:
            findings.append(ir.Finding(
                rule="registry", file=registry, line=1,
                message=f"{name} is registered but documented in neither "
                        "README.md nor DESIGN.md"))
    return findings


# ---------------------------------------------------------------------------
# driver


def run_rules(rules: Iterable[str], functions: List[ir.Function],
              files: List[str], root: str, allow: AllowIndex,
              audit_path: str,
              scope_all: bool = False) -> List[ir.Finding]:
    """`scope_all` lifts the src/-only scoping — used when analyzing a
    fixture tree whose files live at the tree root."""
    src_functions = [fn for fn in functions
                     if scope_all or _in_dir(_rel(fn.file, root), ("src",))]
    findings: List[ir.Finding] = []
    for rule in rules:
        if rule == "lock-order":
            findings.extend(rule_lock_order(src_functions, root, allow))
        elif rule == "blocking-under-lock":
            findings.extend(
                rule_blocking_under_lock(src_functions, root, allow))
        elif rule == "memory-order":
            findings.extend(
                rule_memory_order(src_functions, root, allow, audit_path))
        elif rule == "unchecked-read":
            findings.extend(
                rule_unchecked_read(files, root, allow, scope_all))
        elif rule == "registry":
            findings.extend(rule_registry(files, root, allow, scope_all))
    findings.extend(allow.bare_findings(files))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings
