"""libclang frontend: lowers translation units to the analyzer IR.

Optional by design: the container CI gates on may not ship libclang,
and this repo must not grow hard dependencies.  `available()` reports
whether the bindings import *and* a shared library can be loaded; the
CLI treats an unavailable clang engine as a loudly-reported skip, never
a silent pass (DESIGN.md §15, escape policy).

When it does run, this engine sees through macros and resolves real
receiver types, so mutex identities are exact where the internal
frontend's are best-effort.  Both lower to the same IR and run the same
rules; CI compares them on the fixture battery.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from . import ir

_IMPORT_ERROR: Optional[str] = None
try:  # pragma: no cover - exercised only where libclang exists
    from clang import cindex as _cx
except Exception as e:  # ModuleNotFoundError, ImportError on broken installs
    _cx = None
    _IMPORT_ERROR = f"clang.cindex import failed: {e}"

_GUARD_TYPES = ("MutexLock", "lock_guard", "unique_lock", "scoped_lock")
_ATOMIC_OPS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong",
}
_ORDER_SPELLINGS = {
    "memory_order_relaxed": "relaxed",
    "memory_order_acquire": "acquire",
    "memory_order_release": "release",
    "memory_order_acq_rel": "acq_rel",
    "memory_order_seq_cst": "seq_cst",
    "memory_order_consume": "consume",
}


def _ensure_library() -> Optional[str]:
    """Try to make Config point at a loadable libclang.  Returns an error
    string, or None on success."""
    if _cx is None:
        return _IMPORT_ERROR
    try:
        _cx.Index.create()
        return None
    except Exception:
        pass
    candidates = []
    env = os.environ.get("KRONLAB_LIBCLANG")
    if env:
        candidates.append(env)
    for d in ("/usr/lib/llvm-18/lib", "/usr/lib/llvm-17/lib",
              "/usr/lib/llvm-16/lib", "/usr/lib/llvm-15/lib",
              "/usr/lib/llvm-14/lib", "/usr/lib/x86_64-linux-gnu",
              "/usr/lib", "/usr/local/lib"):
        for n in ("libclang.so", "libclang-18.so", "libclang-17.so",
                  "libclang-16.so", "libclang-15.so", "libclang-14.so",
                  "libclang.so.1"):
            candidates.append(os.path.join(d, n))
    for c in candidates:
        if not os.path.exists(c):
            continue
        try:
            _cx.Config.loaded = False
            _cx.Config.set_library_file(c)
            _cx.Index.create()
            return None
        except Exception:
            continue
    return "no loadable libclang shared library found"


def available() -> Tuple[bool, str]:
    """(ok, reason-if-not)."""
    err = _ensure_library()
    return (err is None), (err or "")


def _qualified_name(cursor) -> str:
    parts = []
    c = cursor
    while c is not None and c.kind != _cx.CursorKind.TRANSLATION_UNIT:
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    parts.reverse()
    # Drop namespaces: rules key on Class::member like the internal engine.
    return "::".join(parts[-2:]) if len(parts) >= 2 else (
        parts[0] if parts else "?")


def _mutex_id(expr) -> str:
    """Canonical id for the mutex argument expression of a guard/wait."""
    ref = None
    for c in expr.walk_preorder():
        if c.kind in (_cx.CursorKind.MEMBER_REF_EXPR,
                      _cx.CursorKind.DECL_REF_EXPR):
            ref = c  # last one wins: the member itself
    if ref is None:
        return expr.spelling or "?"
    d = ref.referenced
    if d is None:
        return ref.spelling or "?"
    parent = d.semantic_parent
    if parent is not None and parent.kind in (
            _cx.CursorKind.CLASS_DECL, _cx.CursorKind.STRUCT_DECL):
        return f"{parent.spelling}::{d.spelling}"
    return d.spelling


def _lower_function(cursor, path: str):
    """Returns (Function, [nested lambda Functions])."""
    fn = ir.Function(name=_qualified_name(cursor), file=path,
                     line=cursor.location.line)
    lowered: List[ir.Function] = []
    body = None
    for c in cursor.get_children():
        if c.kind == _cx.CursorKind.COMPOUND_STMT:
            body = c
    if body is None:
        return fn, lowered

    def walk(node, in_lambda: bool) -> None:
        for c in node.get_children():
            k = c.kind
            if k == _cx.CursorKind.LAMBDA_EXPR:
                # Lowered separately; held locks do not flow inside.
                sub, sub_nested = _lower_function(c, path)
                sub.name = f"{fn.name}::<lambda@{c.location.line}>"
                lowered.append(sub)
                lowered.extend(sub_nested)
                continue
            if k == _cx.CursorKind.VAR_DECL and any(
                    g in c.type.spelling for g in _GUARD_TYPES):
                args = [a for a in c.get_children()
                        if a.kind != _cx.CursorKind.TYPE_REF]
                mutex = _mutex_id(args[-1]) if args else "?"
                ext = c.semantic_parent.extent if c.semantic_parent else c.extent
                fn.events.append(ir.Acquire(
                    mutex=mutex, line=c.location.line, kind="raii",
                    scope_end_line=ext.end.line))
                continue
            if k == _cx.CursorKind.CALL_EXPR:
                name = c.spelling or ""
                children = list(c.get_children())
                if name == "wait" and children:
                    args = children[1:]
                    if args:
                        fn.events.append(ir.CondWait(
                            mutex=_mutex_id(args[0]),
                            line=c.location.line))
                        walk(c, in_lambda)
                        continue
                if name in ("lock", "unlock") and children:
                    mutex = _mutex_id(children[0])
                    if name == "lock":
                        fn.events.append(ir.Acquire(
                            mutex=mutex, line=c.location.line,
                            kind="manual"))
                    else:
                        fn.events.append(ir.Release(
                            mutex=mutex, line=c.location.line))
                    continue
                if name in _ATOMIC_OPS:
                    order = "seq_cst(default)"
                    var = "?"
                    for t in c.get_tokens():
                        o = _ORDER_SPELLINGS.get(t.spelling)
                        if o:
                            order = o
                            break
                    if children:
                        var = children[0].spelling or "?"
                        for cc in children[0].walk_preorder():
                            if cc.kind in (_cx.CursorKind.MEMBER_REF_EXPR,
                                           _cx.CursorKind.DECL_REF_EXPR):
                                var = cc.spelling or var
                    fn.events.append(ir.AtomicOp(
                        var=var, op=name, order=order,
                        line=c.location.line))
                    walk(c, in_lambda)
                    continue
                qual = ""
                ref = c.referenced
                if ref is not None and ref.semantic_parent is not None \
                        and ref.semantic_parent.kind in (
                            _cx.CursorKind.CLASS_DECL,
                            _cx.CursorKind.STRUCT_DECL):
                    qual = ref.semantic_parent.spelling
                if name:
                    fn.events.append(ir.Call(
                        callee=name, qualifier=qual, line=c.location.line))
                walk(c, in_lambda)
                continue
            walk(c, in_lambda)

    walk(body, False)
    return fn, lowered


def lower_files(paths: List[str],
                compdb_dir: Optional[str] = None
                ) -> Tuple[List[ir.Function], Dict[str, Dict[str, str]]]:
    """Lower `paths` with libclang.  Raises RuntimeError if unavailable."""
    err = _ensure_library()
    if err:
        raise RuntimeError(err)
    index = _cx.Index.create()
    db = None
    if compdb_dir:
        try:
            db = _cx.CompilationDatabase.fromDirectory(compdb_dir)
        except Exception:
            db = None
    functions: List[ir.Function] = []
    mutex_classes: Dict[str, Dict[str, str]] = {}
    for path in paths:
        args = ["-std=c++20", "-x", "c++"]
        if db is not None:
            cmds = db.getCompileCommands(path)
            if cmds:
                raw = list(cmds[0].arguments)[1:-1]
                args = [a for a in raw if a not in ("-c", "-o")
                        and not a.endswith(".o") and a != path]
        try:
            tu = index.parse(path, args=args)
        except Exception:
            continue
        for cursor in tu.cursor.walk_preorder():
            loc = cursor.location
            if loc.file is None or os.path.abspath(loc.file.name) != \
                    os.path.abspath(path):
                continue
            if cursor.kind in (_cx.CursorKind.FIELD_DECL,) and \
                    "Mutex" in cursor.type.spelling:
                parent = cursor.semantic_parent
                if parent is not None and parent.spelling:
                    mutex_classes.setdefault(parent.spelling, {})[
                        cursor.spelling] = \
                        f"{parent.spelling}::{cursor.spelling}"
            if cursor.kind in (_cx.CursorKind.FUNCTION_DECL,
                               _cx.CursorKind.CXX_METHOD,
                               _cx.CursorKind.CONSTRUCTOR,
                               _cx.CursorKind.DESTRUCTOR) \
                    and cursor.is_definition():
                fn, extra = _lower_function(cursor, path)
                functions.append(fn)
                functions.extend(extra)
    return functions, mutex_classes
