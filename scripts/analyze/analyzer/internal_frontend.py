"""Token/scope frontend: lowers one C++ file to the analyzer IR.

No preprocessor, no template instantiation — a structural scan that
understands exactly the idioms this codebase uses:

* function definitions at namespace/class scope (``name(...) ... {``),
* ``MutexLock lock(mu);`` RAII guards (scope-bounded),
* explicit ``mu.lock()`` / ``mu.unlock()`` / ``cv.wait(mu)``,
* calls ``f(...)``, ``obj.f(...)``, ``Class::f(...)``,
* atomic operations ``x.load(...)``, ``x.store(...)``, ``fetch_*`` and
  friends, with or without an explicit ``std::memory_order``.

Mutex identity: an unqualified member (``mu_``) acquired inside class
``C`` canonicalises to ``C::mu_``; ``obj.member`` canonicalises to the
receiver's *declared class* when a local declaration of ``obj`` (or a
member/param of a known class) is in view, else ``<obj>.member``.
Lambdas are lowered as separate anonymous functions: the enclosing
function's held locks are suspended inside a lambda body, because the
body typically runs on another thread.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import ir
from .lexer import CHAR, IDENT, NUMBER, PUNCT, STRING, Token, tokenize

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "throw",
    "new", "delete", "static_cast", "dynamic_cast", "reinterpret_cast",
    "const_cast", "alignof", "decltype", "noexcept", "case", "default",
    "do", "else", "goto", "try", "using", "typedef", "template",
    "typename", "operator", "co_await", "co_return", "co_yield",
}

_GUARD_TYPES = {"MutexLock", "lock_guard", "unique_lock", "scoped_lock"}
_ATOMIC_OPS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong",
}
_ORDERS = {
    "memory_order_relaxed": "relaxed",
    "memory_order_acquire": "acquire",
    "memory_order_release": "release",
    "memory_order_acq_rel": "acq_rel",
    "memory_order_seq_cst": "seq_cst",
    "memory_order_consume": "consume",
}


def _match_paren(toks: List[Token], i: int) -> int:
    """`toks[i]` is '('; return index just past the matching ')'."""
    depth = 0
    while i < len(toks):
        s = toks[i].spelling
        if toks[i].kind == PUNCT:
            if s == "(":
                depth += 1
            elif s == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return len(toks)


def _match_brace(toks: List[Token], i: int) -> int:
    """`toks[i]` is '{'; return index just past the matching '}'."""
    depth = 0
    while i < len(toks):
        s = toks[i].spelling
        if toks[i].kind == PUNCT:
            if s == "{":
                depth += 1
            elif s == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return len(toks)


class _TU:
    """One file's lowering pass."""

    def __init__(self, path: str, text: str,
                 mutex_classes: Dict[str, Dict[str, str]]):
        self.path = path
        self.toks = tokenize(text)
        self.functions: List[ir.Function] = []
        # class name -> {member mutex name -> canonical id}
        self.mutex_classes = mutex_classes
        self._lambda_seq = 0

    # -- declaration scan ---------------------------------------------------

    def scan_mutex_members(self) -> None:
        """First pass: record `Mutex name;` members per enclosing class
        so receivers can be canonicalised in the lowering pass."""
        toks = self.toks
        stack: List[Tuple[str, int]] = []  # (class-or-"" , brace-depth-at-open)
        depth = 0
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.kind == PUNCT and t.spelling == "{":
                depth += 1
                i += 1
                continue
            if t.kind == PUNCT and t.spelling == "}":
                depth -= 1
                while stack and stack[-1][1] > depth:
                    stack.pop()
                i += 1
                continue
            if (t.kind == IDENT and t.spelling in ("class", "struct")
                    and i + 1 < len(toks) and toks[i + 1].kind == IDENT):
                # find the '{' of the class body (skip bases), bail at ';'
                j = i + 2
                while j < len(toks) and toks[j].spelling not in ("{", ";"):
                    j += 1
                if j < len(toks) and toks[j].spelling == "{":
                    stack.append((toks[i + 1].spelling, depth + 1))
            if (t.kind == IDENT and t.spelling in ("Mutex", "mutex")
                    and i + 1 < len(toks) and toks[i + 1].kind == IDENT
                    and i + 2 < len(toks)
                    and toks[i + 2].spelling in (";", "GUARDED_BY", "{", "=")):
                cls = stack[-1][0] if stack else ""
                if cls:
                    name = toks[i + 1].spelling
                    self.mutex_classes.setdefault(cls, {})[name] = (
                        f"{cls}::{name}")
            i += 1

    # -- function discovery -------------------------------------------------

    def lower(self) -> List[ir.Function]:
        toks = self.toks
        i = 0
        class_stack: List[Tuple[str, int]] = []
        depth = 0
        while i < len(toks):
            t = toks[i]
            if t.kind == PUNCT and t.spelling == "{":
                depth += 1
                i += 1
                continue
            if t.kind == PUNCT and t.spelling == "}":
                depth -= 1
                while class_stack and class_stack[-1][1] > depth:
                    class_stack.pop()
                i += 1
                continue
            if (t.kind == IDENT and t.spelling in ("class", "struct")
                    and i + 1 < len(toks) and toks[i + 1].kind == IDENT):
                j = i + 2
                while j < len(toks) and toks[j].spelling not in ("{", ";"):
                    j += 1
                if j < len(toks) and toks[j].spelling == "{":
                    class_stack.append((toks[i + 1].spelling, depth + 1))
                    i = j  # continue into the class body
                    continue
            # Candidate function definition: IDENT '(' ... ')' [stuff] '{'
            if t.kind == IDENT and t.spelling not in _KEYWORDS \
                    and i + 1 < len(toks) and toks[i + 1].spelling == "(":
                close = _match_paren(toks, i + 1)
                j = close
                # skip const/noexcept/override/trailing-return/init-lists
                # up to '{' or ';' or something that rules it out
                body = -1
                while j < len(toks):
                    s = toks[j].spelling
                    if s == "{":
                        body = j
                        break
                    if s in (";", ")", "]", ","):
                        break
                    if s == "=" and j + 1 < len(toks) \
                            and toks[j + 1].spelling in ("default", "delete"):
                        break
                    if s == ":":  # ctor init list: skip to its '{'
                        k = j + 1
                        pd = 0
                        while k < len(toks):
                            sk = toks[k].spelling
                            if sk in ("(", "{") and pd >= 0:
                                if sk == "{" and pd == 0:
                                    break
                                pd += 1
                            elif sk in (")", "}"):
                                pd -= 1
                            elif sk == ";" and pd == 0:
                                break
                            k += 1
                        j = k
                        continue
                    j += 1
                if body >= 0 and self._looks_like_function(i):
                    qual = self._qualifier_of(i, class_stack)
                    name = (f"{qual}::{t.spelling}" if qual else t.spelling)
                    end = _match_brace(toks, body)
                    fn = ir.Function(name=name, file=self.path, line=t.line)
                    self._lower_body(fn, body, end, qual)
                    self.functions.append(fn)
                    i = end
                    continue
            i += 1
        return self.functions

    def _looks_like_function(self, i: int) -> bool:
        """Reject obvious non-definitions: `x = name(...) {` never occurs,
        but `if (...) {`-style keywords and initialising declarations like
        `Foo f(arg); { ... }` are handled by the caller's '{' search
        stopping at ';'.  What remains to reject is a call inside an
        expression: look back one token."""
        toks = self.toks
        j = i - 1
        if j < 0:
            return True
        prev = toks[j]
        if prev.kind == PUNCT and prev.spelling in (
                "=", "(", ",", "return", "+", "-", "*", "/", "!", "&&",
                "||", "<", ">", "?"):
            return False
        if prev.kind == IDENT and prev.spelling in ("return", "co_return"):
            return False
        return True

    def _qualifier_of(self, i: int,
                      class_stack: List[Tuple[str, int]]) -> str:
        toks = self.toks
        if i >= 2 and toks[i - 1].spelling == "::" \
                and toks[i - 2].kind == IDENT:
            return toks[i - 2].spelling
        if class_stack:
            return class_stack[-1][0]
        return ""

    # -- body lowering ------------------------------------------------------

    def _lower_body(self, fn: ir.Function, body: int, end: int,
                    enclosing_class: str) -> None:
        toks = self.toks
        # local declarations: var name -> class name (best effort)
        locals_: Dict[str, str] = {}
        known_classes = set(self.mutex_classes)
        i = body + 1
        while i < end - 1:
            t = toks[i]
            s = t.spelling
            # Lambda body: lower as a separate anonymous function.
            if t.kind == PUNCT and s == "[":
                lam = self._maybe_lambda(i, end)
                if lam is not None:
                    lam_body, lam_end = lam
                    self._lambda_seq += 1
                    sub = ir.Function(
                        name=f"{fn.name}::<lambda#{self._lambda_seq}>",
                        file=self.path, line=toks[i].line)
                    self._lower_body(sub, lam_body, lam_end, enclosing_class)
                    self.functions.append(sub)
                    i = lam_end
                    continue
                i += 1
                continue
            if t.kind != IDENT:
                i += 1
                continue
            # Local declaration of a known class: `Foo x...` / `Foo& x...`
            if s in known_classes and i + 1 < end:
                j = i + 1
                while j < end and toks[j].spelling in ("&", "*", "const"):
                    j += 1
                if j < end and toks[j].kind == IDENT \
                        and toks[j].spelling not in _KEYWORDS:
                    locals_[toks[j].spelling] = s
            # RAII guard: `MutexLock name(expr);`
            if s in _GUARD_TYPES:
                g = self._lower_guard(fn, i, end, enclosing_class, locals_)
                if g is not None:
                    i = g
                    continue
            # cv.wait(mu) — mutex released during the wait
            if s == "wait" and i + 1 < end \
                    and toks[i + 1].spelling == "(" \
                    and i >= 2 and toks[i - 1].spelling == "." :
                chain = self._first_arg_chain(i + 1, end)
                if chain:
                    fn.events.append(ir.CondWait(
                        mutex=self._canon_mutex(chain, enclosing_class,
                                                locals_),
                        line=t.line))
                i = _match_paren(toks, i + 1)
                continue
            # Explicit mu.lock()/unlock()
            if s in ("lock", "unlock", "try_lock") and i + 1 < end \
                    and toks[i + 1].spelling == "(" \
                    and i >= 2 and toks[i - 1].spelling in (".", "->") \
                    and toks[i - 2].kind == IDENT:
                recv = toks[i - 2].spelling
                mutex = self._canon_mutex([recv], enclosing_class, locals_)
                if s == "lock":
                    fn.events.append(ir.Acquire(mutex=mutex, line=t.line,
                                                kind="manual"))
                elif s == "unlock":
                    fn.events.append(ir.Release(mutex=mutex, line=t.line))
                i = _match_paren(toks, i + 1)
                continue
            # Atomic op: x.load(...), x.fetch_add(...), ...
            if s in _ATOMIC_OPS and i + 1 < end \
                    and toks[i + 1].spelling == "(" \
                    and i >= 2 and toks[i - 1].spelling in (".", "->") \
                    and toks[i - 2].kind == IDENT:
                close = _match_paren(toks, i + 1)
                order = "seq_cst(default)"
                for k in range(i + 2, close):
                    o = _ORDERS.get(toks[k].spelling)
                    if o:
                        order = o
                        break
                fn.events.append(ir.AtomicOp(
                    var=toks[i - 2].spelling, op=s, order=order,
                    line=t.line))
                i = close
                continue
            # Generic call: [qual :: | recv .] name '('
            if s not in _KEYWORDS and i + 1 < end \
                    and toks[i + 1].spelling == "(":
                qual = ""
                if i >= 2 and toks[i - 1].spelling in (".", "->") \
                        and toks[i - 2].kind == IDENT:
                    recv = toks[i - 2].spelling
                    qual = locals_.get(recv, recv)
                elif i >= 2 and toks[i - 1].spelling == "::" \
                        and toks[i - 2].kind == IDENT:
                    qual = toks[i - 2].spelling
                fn.events.append(ir.Call(callee=s, qualifier=qual,
                                         line=t.line))
                i += 2  # descend into the argument list (nested calls)
                continue
            i += 1

    def _maybe_lambda(self, i: int, end: int) -> Optional[Tuple[int, int]]:
        """toks[i] is '['.  If this introduces a lambda, return
        (body_open_index, body_end_index)."""
        toks = self.toks
        # close the capture list
        depth = 0
        j = i
        while j < end:
            s = toks[j].spelling
            if s == "[":
                depth += 1
            elif s == "]":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if j >= end:
            return None
        j += 1
        if j < end and toks[j].spelling == "(":
            j = _match_paren(toks, j)
        # skip mutable/noexcept/-> type
        while j < end and toks[j].spelling not in ("{", ";", ")", ","):
            j += 1
        if j < end and toks[j].spelling == "{":
            return j, _match_brace(toks, j)
        return None

    def _lower_guard(self, fn: ir.Function, i: int, end: int,
                     enclosing_class: str,
                     locals_: Dict[str, str]) -> Optional[int]:
        """`toks[i]` is a guard type name.  Returns resume index."""
        toks = self.toks
        j = i + 1
        if j < end and toks[j].spelling == "<":  # lock_guard<Mutex>
            while j < end and toks[j].spelling != ">":
                j += 1
            j += 1
        if j >= end or toks[j].kind != IDENT:
            return None
        j += 1  # guard variable name
        if j >= end or toks[j].spelling not in ("(", "{"):
            return None
        open_p = toks[j].spelling
        close = (_match_paren(toks, j) if open_p == "("
                 else _match_brace(toks, j))
        chain = self._first_arg_chain(j, end)
        if not chain:
            return close
        # The guard lives to the end of the enclosing block.
        scope_end = self._enclosing_block_end(i, end)
        fn.events.append(ir.Acquire(
            mutex=self._canon_mutex(chain, enclosing_class, locals_),
            line=toks[i].line, kind="raii",
            scope_end_line=toks[min(scope_end, len(toks) - 1)].line))
        return close

    def _enclosing_block_end(self, i: int, end: int) -> int:
        """Index of the '}' closing the innermost block containing i."""
        toks = self.toks
        depth = 0
        j = i
        while j < end:
            s = toks[j].spelling
            if toks[j].kind == PUNCT:
                if s == "{":
                    depth += 1
                elif s == "}":
                    if depth == 0:
                        return j
                    depth -= 1
            j += 1
        return end - 1

    def _first_arg_chain(self, open_paren: int, end: int) -> List[str]:
        """Identifier chain of the first argument expression: `(mu_)` ->
        ["mu_"], `(r.mu)` -> ["r", "mu"], `(conn->write_mu)` ->
        ["conn", "write_mu"]."""
        toks = self.toks
        close = _match_paren(toks, open_paren)
        chain: List[str] = []
        for k in range(open_paren + 1, close - 1):
            t = toks[k]
            if t.kind == IDENT:
                chain.append(t.spelling)
            elif t.spelling in (".", "->", "::"):
                continue
            elif t.spelling == ",":
                break
            else:
                chain = []  # complex expression: keep only the tail
        return chain

    def _canon_mutex(self, chain: List[str], enclosing_class: str,
                     locals_: Dict[str, str]) -> str:
        name = chain[-1]
        # `recv.member` with a declared receiver class wins.
        if len(chain) >= 2:
            recv_cls = locals_.get(chain[-2])
            if recv_cls and name in self.mutex_classes.get(recv_cls, {}):
                return f"{recv_cls}::{name}"
        # unqualified member of the enclosing class
        members = self.mutex_classes.get(enclosing_class, {})
        if len(chain) == 1 and name in members:
            return members[name]
        # a member of exactly one known class anywhere in the project
        owners = sorted(c for c, ms in self.mutex_classes.items()
                        if name in ms)
        if len(owners) == 1:
            return f"{owners[0]}::{name}"
        if len(chain) >= 2:
            return f"<{chain[-2]}>::{name}"
        if enclosing_class:
            return f"{enclosing_class}::{name}"
        return name


def lower_files(paths: List[str]) -> Tuple[List[ir.Function], Dict[str, Dict[str, str]]]:
    """Lower `paths` (absolute or repo-relative) into IR functions.
    Two passes so mutex members declared in headers canonicalise uses in
    .cpp files regardless of order."""
    mutex_classes: Dict[str, Dict[str, str]] = {}
    tus = []
    for p in paths:
        try:
            with open(p, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        tu = _TU(p, text, mutex_classes)
        tu.scan_mutex_members()
        tus.append(tu)
    functions: List[ir.Function] = []
    for tu in tus:
        functions.extend(tu.lower())
    return functions, mutex_classes
