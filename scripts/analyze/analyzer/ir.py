"""The engine-neutral IR both frontends lower to.

A translation unit becomes a list of `Function`s; each function is a
flat, source-ordered list of events.  Scope structure is encoded in the
events themselves (`Acquire.scope_end_line` for RAII guards), which is
all the rules need: they reason about *which locks are live at an
event*, not about arbitrary control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Acquire:
    """A lock acquisition.  RAII guards carry the guard scope's end."""

    mutex: str               # canonical id, e.g. "Server::queue_mu_"
    line: int
    kind: str                # "raii" | "manual"
    scope_end_line: Optional[int] = None  # raii only


@dataclass
class Release:
    mutex: str
    line: int


@dataclass
class CondWait:
    """cv.wait(mu): the mutex is released for the duration of the wait,
    so a wait is *not* a blocking call under that lock."""

    mutex: str
    line: int


@dataclass
class Call:
    """A function call.  `callee` is the unqualified name; `qualifier`
    is the best-effort receiver/class ('Comm', 'obj', '' for free)."""

    callee: str
    qualifier: str
    line: int


@dataclass
class AtomicOp:
    """One atomic operation site."""

    var: str                 # last identifier of the object expression
    op: str                  # load | store | fetch_add | ... | init
    order: str               # relaxed | acquire | release | acq_rel |
                             # seq_cst | consume | seq_cst(default)
    line: int


@dataclass
class Function:
    name: str                # qualified best-effort, e.g. "Server::adopt"
    file: str
    line: int
    events: List[object] = field(default_factory=list)


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"
