"""kronlab_analyze — semantic, project-specific static analysis.

Two frontends lower C++ translation units into one small IR
(`analyzer.ir`); the rules (`analyzer.rules`) only ever see the IR plus
raw file text, so every rule behaves identically under both engines:

* ``internal`` — a token/scope frontend with no dependencies beyond the
  Python standard library.  This is the engine CI gates on and the one
  that always works in a bare container.
* ``clang`` — libclang Python bindings, when importable.  Sees through
  macros and resolves real types; runs as an advisory cross-check.

See DESIGN.md §15 for the capability map and escape policy.
"""

__version__ = "1.0"

RULES = (
    "lock-order",
    "blocking-under-lock",
    "memory-order",
    "unchecked-read",
    "registry",
)
