"""Project plumbing: file discovery, allow markers, the memory-order
audit file, and finding suppression.

Allow markers
-------------
A finding is suppressed by a justified marker on the finding's line or
in the contiguous comment block directly above::

    // kronlab-analyze: allow(blocking-under-lock) single writer per
    //   connection; write_mu exists to serialize whole frames

The justification text after ``allow(rule)`` is mandatory — a bare
marker is itself reported as a finding (rule ``bare-allow``).  This is
the same escape-hatch shape as kronlab_lint, deliberately: grep for
``kronlab-analyze:`` audits every suppression in the tree.

Audit file (memory-order rule)
------------------------------
``memory_order.audit`` lines look like::

    src/kronlab/obs/log.cpp | g_level | load | relaxed | 3 | level gate; ...

keyed by (file, var, op, order) with an expected site count and a
mandatory justification.  The rule reports sites with no audit entry,
entries whose count no longer matches (stale), and entries for sites
that no longer exist.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from . import RULES
from .ir import Finding

ALLOW_RE = re.compile(
    r"kronlab-analyze:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)\s*(\S?)")

SRC_DIRS = ("src", "tools", "bench")
SRC_EXT = (".cpp", ".cc", ".cxx", ".hpp", ".h")


def repo_root(start: Optional[str] = None) -> str:
    d = os.path.abspath(start or os.path.dirname(__file__))
    while d != "/":
        if os.path.isdir(os.path.join(d, ".git")):
            return d
        d = os.path.dirname(d)
    return os.getcwd()


def files_from_compdb(compdb_path: str) -> List[str]:
    with open(compdb_path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    seen: Set[str] = set()
    out: List[str] = []
    for e in entries:
        p = os.path.abspath(os.path.join(e["directory"], e["file"]))
        if p not in seen and os.path.exists(p):
            seen.add(p)
            out.append(p)
    return out


def files_from_tree(root: str,
                    dirs: Iterable[str] = SRC_DIRS) -> List[str]:
    out: List[str] = []
    for d in dirs:
        top = os.path.join(root, d)
        for base, _dirs, names in os.walk(top):
            for n in sorted(names):
                if n.endswith(SRC_EXT):
                    out.append(os.path.join(base, n))
    return sorted(out)


def headers_for(sources: List[str], root: str) -> List[str]:
    """The project headers belonging to the same tree as `sources` —
    the internal engine analyzes them directly (no preprocessor)."""
    src_set = set(sources)
    out = list(sources)
    for p in files_from_tree(root):
        if p.endswith((".hpp", ".h")) and p not in src_set:
            out.append(p)
    return out


@dataclass
class AllowIndex:
    """Per-file allow markers, line -> set of rules; plus bare markers."""

    by_file: Dict[str, Dict[int, Set[str]]] = field(default_factory=dict)
    comment_lines: Dict[str, Set[int]] = field(default_factory=dict)
    bare: List[Tuple[str, int]] = field(default_factory=list)
    used: Set[Tuple[str, int, str]] = field(default_factory=set)

    def scan(self, path: str) -> None:
        if path in self.by_file:
            return
        table: Dict[int, Set[str]] = {}
        comments: Set[int] = set()
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                for lineno, line in enumerate(f, start=1):
                    if line.lstrip().startswith("//"):
                        comments.add(lineno)
                    m = ALLOW_RE.search(line)
                    if not m:
                        continue
                    rules = {r.strip() for r in m.group(1).split(",")}
                    if not m.group(2):
                        # no justification text after the ')'
                        self.bare.append((path, lineno))
                    table[lineno] = rules
        except OSError:
            pass
        self.by_file[path] = table
        self.comment_lines[path] = comments

    def allows(self, path: str, line: int, rule: str) -> bool:
        """Marker on the line itself, or anywhere in the contiguous
        comment block directly above it (multi-line justifications)."""
        self.scan(path)
        table = self.by_file.get(path, {})
        comments = self.comment_lines.get(path, set())
        if rule in table.get(line, ()):
            self.used.add((path, line, rule))
            return True
        ln = line - 1
        while ln > 0 and ln in comments:
            if rule in table.get(ln, ()):
                self.used.add((path, ln, rule))
                return True
            ln -= 1
        return False

    def bare_findings(self, paths: Iterable[str]) -> List[Finding]:
        for p in paths:
            self.scan(p)
        return [Finding(rule="bare-allow", file=p, line=ln,
                        message="allow() marker carries no justification "
                                "text; say why the suppression is sound")
                for p, ln in self.bare]


@dataclass
class AuditEntry:
    file: str
    var: str
    op: str
    order: str
    count: int
    justification: str
    line: int  # line in the audit file, for reporting


def parse_audit(path: str) -> Tuple[Dict[Tuple[str, str, str, str], AuditEntry],
                                    List[Finding]]:
    entries: Dict[Tuple[str, str, str, str], AuditEntry] = {}
    findings: List[Finding] = []
    if not os.path.exists(path):
        return entries, findings
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = [p.strip() for p in line.split("|")]
            if len(parts) != 6:
                findings.append(Finding(
                    rule="memory-order", file=path, line=lineno,
                    message="malformed audit line (want "
                            "file|var|op|order|count|justification)"))
                continue
            fpath, var, op, order, count_s, just = parts
            try:
                count = int(count_s)
            except ValueError:
                findings.append(Finding(
                    rule="memory-order", file=path, line=lineno,
                    message=f"bad count {count_s!r} in audit line"))
                continue
            if not just:
                findings.append(Finding(
                    rule="memory-order", file=path, line=lineno,
                    message=f"audit entry for {fpath} {var}.{op} has no "
                            "justification"))
            key = (fpath, var, op, order)
            if key in entries:
                findings.append(Finding(
                    rule="memory-order", file=path, line=lineno,
                    message=f"duplicate audit entry for {key}"))
                continue
            entries[key] = AuditEntry(fpath, var, op, order, count, just,
                                      lineno)
    return entries, findings


def validate_rules(names: Iterable[str]) -> List[str]:
    bad = [n for n in names if n not in RULES]
    if bad:
        raise ValueError(f"unknown rule(s): {', '.join(bad)}; "
                         f"known: {', '.join(RULES)}")
    return list(names)
