#!/usr/bin/env python3
"""Compare kronlab bench JSON dumps against committed baselines.

Usage: check_bench_regression.py --baselines DIR CURRENT.json [...]

Each CURRENT.json is a kronlab-bench-v1 dump (see bench/harness); it is
matched to DIR/BENCH_<name>.json by its embedded bench name.  For every
metric named in the per-bench spec below the current value must stay
inside the baseline's tolerance band, else the script prints the
violation and exits 1 (CI's bench-regression job then uploads the
offending JSON as an artifact).

What is compared — and why these metrics and not wall times:

  * Within-run ratios (speedups, overhead multipliers) divide two timings
    taken in the same process on the same machine, so they transfer
    between the committing machine and any CI runner.  These carry the
    tight 15% band: a >15% drop in, say, the aggregated-vs-per-row
    exchange speedup means the aggregation layer itself regressed.
  * Correctness booleans (counts exact, stores bit-identical) must never
    change at all.
  * Absolute throughput (edges/s) does depend on the host, so it gets a
    wide 50% band — it only catches order-of-magnitude collapses, e.g. a
    quick-mode instance silently growing or a kernel falling off a cliff.
  * Instance-size counters are pinned exactly: if the quick-mode workload
    changes, every other number is incomparable and the baseline must be
    regenerated in the same commit.

Regenerating baselines (after an intentional perf or workload change):

    bench_<name> --quick --json bench/baselines/BENCH_<name>.json

and commit the result alongside the change that moved the numbers.

Exit status: 0 in-band, 1 regression or malformed input, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class Metric:
    name: str
    # "higher": regression when current < baseline * (1 - rel_tol)
    # "lower":  regression when current > baseline * (1 + rel_tol)
    #           (or baseline + abs_slack when abs_slack is set — used for
    #           metrics that legitimately sit near or below zero, where a
    #           relative band is meaningless)
    # "bool":   regression when current != baseline (compared as truthiness)
    # "exact":  regression when current != baseline (numeric identity)
    kind: str
    rel_tol: float = 0.15
    abs_slack: float | None = None


# Metrics per bench name (the "name" key inside the JSON, not the file
# name).  Only benches listed here are regression-gated; validating the
# schema itself is check_bench_json.py's job.
SPECS: dict[str, list[Metric]] = {
    "distributed": [
        # The tentpole ratio: aggregated vs per-row ghost exchange, same
        # process, same instance.  A drop means batching stopped paying.
        Metric("agg_speedup_clean", "higher"),
        Metric("agg_speedup_faulted", "higher"),
        # Supervised-recovery cost relative to the clean supervised run.
        # Recovery replays generation blocks, so this is timing-noisy:
        # wide band, still catches a recovery path that stops converging.
        Metric("recovery_overhead_x", "lower", rel_tol=0.50),
        Metric("agg_edges_per_sec_clean", "higher", rel_tol=0.50),
        Metric("agg_edges_per_sec_faulted", "higher", rel_tol=0.50),
        Metric("agg_beats_per_row", "bool"),
        Metric("agg_exchange_exact", "bool"),
        Metric("faulted_run_verified", "bool"),
        Metric("rank_sweeps_exact", "bool"),
        # Folded obs/stats latency histogram for the ghost-row exchange
        # (milliseconds, bucket-midpoint quantiles).  Short epochs make
        # these noisy, so the bands are wide; they still catch an
        # exchange that suddenly stalls or serializes.
        Metric("dist/exchange_epoch.p50_ms", "lower", rel_tol=2.0),
        Metric("dist/exchange_epoch.p99_ms", "lower", rel_tol=4.0),
    ],
    "fig3_squares": [
        Metric("vertex_speedup_largest", "higher"),
        Metric("edge_speedup_largest", "higher"),
        Metric("speedup_largest", "higher"),
        Metric("kernels_agree", "bool"),
        Metric("largest_vertices", "exact"),
        Metric("largest_edges", "exact"),
    ],
    "streaming": [
        Metric("edges_per_sec", "higher", rel_tol=0.50),
        # Percent overhead of interrupt+resume vs a paired cold run; can
        # legitimately be negative (resume skips generation), so band it
        # by absolute percentage points, not a ratio.
        Metric("resume_overhead_pct", "lower", abs_slack=15.0),
        Metric("resume_bit_identical", "bool"),
        # Folded obs/stats latency histogram for durable segment commits
        # (milliseconds).  Individual commits are microseconds-scale, so
        # the relative bands are generous.
        Metric("io/segment_commit.p50_ms", "lower", rel_tol=2.0),
        Metric("io/segment_commit.p99_ms", "lower", rel_tol=4.0),
    ],
}


class Regression(Exception):
    pass


def load(path: Path) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise Regression(f"{path}: unreadable: {e}")
    if doc.get("schema") != "kronlab-bench-v1":
        raise Regression(f"{path}: not a kronlab-bench-v1 dump")
    return doc


def metric_value(doc: dict, path: Path, name: str) -> float:
    val = doc.get("counters", {}).get(name)
    if val is None:
        raise Regression(f"{path}: counter '{name}' missing")
    if isinstance(val, bool) or not isinstance(val, (int, float)):
        raise Regression(f"{path}: counter '{name}' is not a number")
    if not math.isfinite(float(val)):
        raise Regression(f"{path}: counter '{name}' is not finite")
    return float(val)


def check_metric(m: Metric, base: float, cur: float) -> tuple[bool, str]:
    """Returns (ok, human-readable band description)."""
    if m.kind == "bool":
        return (bool(cur) == bool(base),
                f"must stay {'true' if base else 'false'}")
    if m.kind == "exact":
        return cur == base, f"must equal {base:g}"
    if m.kind == "higher":
        limit = base * (1.0 - m.rel_tol)
        return cur >= limit, f"must stay >= {limit:g} ({m.rel_tol:.0%} band)"
    if m.kind == "lower":
        if m.abs_slack is not None:
            limit = base + m.abs_slack
            return cur <= limit, f"must stay <= {limit:g} (+{m.abs_slack:g})"
        limit = base * (1.0 + m.rel_tol)
        return cur <= limit, f"must stay <= {limit:g} ({m.rel_tol:.0%} band)"
    raise Regression(f"bad metric kind '{m.kind}' for {m.name}")


def check_file(current_path: Path, baseline_dir: Path) -> int:
    cur_doc = load(current_path)
    name = cur_doc.get("name", "")
    spec = SPECS.get(name)
    if spec is None:
        print(f"skip {current_path} (bench '{name}' not regression-gated)")
        return 0
    base_path = baseline_dir / f"BENCH_{name}.json"
    if not base_path.exists():
        raise Regression(
            f"{current_path}: no baseline {base_path} — run the bench with "
            f"--quick --json {base_path} and commit it")
    base_doc = load(base_path)
    if base_doc.get("name") != name:
        raise Regression(f"{base_path}: baseline is for bench "
                         f"'{base_doc.get('name')}', expected '{name}'")
    if bool(cur_doc.get("quick")) != bool(base_doc.get("quick")):
        raise Regression(
            f"{current_path}: quick={cur_doc.get('quick')} vs baseline "
            f"quick={base_doc.get('quick')} — sizes are incomparable")

    failures = 0
    for m in spec:
        base = metric_value(base_doc, base_path, m.name)
        cur = metric_value(cur_doc, current_path, m.name)
        ok, band = check_metric(m, base, cur)
        status = "ok  " if ok else "FAIL"
        print(f"{status} {name}.{m.name}: baseline={base:g} "
              f"current={cur:g} ({band})")
        failures += 0 if ok else 1
    if failures:
        print(f"FAIL {current_path}: {failures} metric(s) out of band "
              f"vs {base_path}", file=sys.stderr)
    return failures


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baselines", type=Path, required=True,
                    help="directory of committed BENCH_<name>.json baselines")
    ap.add_argument("current", nargs="+", type=Path,
                    help="freshly produced bench JSON files to check")
    args = ap.parse_args(argv)
    if not args.baselines.is_dir():
        print(f"check_bench_regression: {args.baselines} is not a directory",
              file=sys.stderr)
        return 2

    failures = 0
    gated = 0
    for path in args.current:
        try:
            n = check_file(path, args.baselines)
        except Regression as e:
            print(f"FAIL {e}", file=sys.stderr)
            failures += 1
        else:
            failures += n
            gated += 1 if load(path).get("name") in SPECS else 0
    if gated == 0:
        # Nothing compared at all — a glob that matched no gated bench
        # must not masquerade as a green regression gate.
        print("check_bench_regression: no regression-gated bench JSON among "
              "inputs", file=sys.stderr)
        return 1
    if failures:
        print(f"check_bench_regression: {failures} failure(s)",
              file=sys.stderr)
        return 1
    print(f"check_bench_regression: all in band ({gated} bench(es))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
