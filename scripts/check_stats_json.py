#!/usr/bin/env python3
"""Validate a kronlab-stats-v1 snapshot (the JSON `kronlab_query --stats`
prints, produced by Server::stats_text).

Checks, in order:

  1. Parses as JSON with schema == "kronlab-stats-v1".
  2. Required top-level keys, each of the right shape: stats_enabled
     (bool), uptime_seconds (non-negative number), server (object),
     probes_by_op / counters / gauges / histograms (objects).
  3. The server section carries every serve counter as a non-negative
     integer, plus cache_hit_rate in [0, 1].
  4. Every histogram entry has count/mean_us/p50_us/p90_us/p99_us/max_us,
     all non-negative, with monotone quantiles p50 <= p90 <= p99 <= max
     whenever the histogram is non-empty.
  5. Each --require-hist NAME exists and has count >= 1 — the CI smoke
     uses this to prove the daemon actually recorded latency for the
     probes the smoke sent (a silently disabled registry fails here).

Exit status: 0 valid, 1 validation failure, 2 usage/io error.
"""

from __future__ import annotations

import argparse
import json
import sys

SERVER_COUNTERS = (
    "connections_accepted",
    "connections_rejected",
    "frames",
    "responses",
    "probes",
    "overloaded",
    "malformed",
    "shed_shutdown",
    "in_flight",
    "queue_depth",
    "cache_hits",
    "cache_misses",
)

HIST_FIELDS = ("count", "mean_us", "p50_us", "p90_us", "p99_us", "max_us")


def fail(msg: str) -> None:
    print(f"check_stats_json: FAIL: {msg}")
    sys.exit(1)


def is_num(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check(doc, require_hist: list[str]) -> None:
    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("schema") != "kronlab-stats-v1":
        fail(f"schema is {doc.get('schema')!r}, expected 'kronlab-stats-v1'")
    if not isinstance(doc.get("stats_enabled"), bool):
        fail("stats_enabled missing or not a bool")
    up = doc.get("uptime_seconds")
    if not is_num(up) or up < 0:
        fail("uptime_seconds missing or negative")
    for key in ("server", "probes_by_op", "counters", "gauges", "histograms"):
        if not isinstance(doc.get(key), dict):
            fail(f"{key} missing or not an object")

    server = doc["server"]
    for name in SERVER_COUNTERS:
        v = server.get(name)
        if not is_num(v) or v < 0 or v != int(v):
            fail(f"server.{name} missing or not a non-negative integer")
    rate = server.get("cache_hit_rate")
    if not is_num(rate) or not 0.0 <= rate <= 1.0:
        fail("server.cache_hit_rate missing or outside [0, 1]")

    for op, v in doc["probes_by_op"].items():
        if not is_num(v) or v < 0 or v != int(v):
            fail(f"probes_by_op.{op} is not a non-negative integer")

    for name, hist in doc["histograms"].items():
        if not isinstance(hist, dict):
            fail(f"histograms[{name!r}] is not an object")
        for field in HIST_FIELDS:
            v = hist.get(field)
            if not is_num(v) or v < 0:
                fail(f"histograms[{name!r}].{field} missing or negative")
        if hist["count"] > 0:
            p50, p90, p99, mx = (
                hist["p50_us"],
                hist["p90_us"],
                hist["p99_us"],
                hist["max_us"],
            )
            if not p50 <= p90 <= p99 <= mx:
                fail(
                    f"histograms[{name!r}] quantiles not monotone: "
                    f"p50={p50} p90={p90} p99={p99} max={mx}"
                )

    for name in require_hist:
        hist = doc["histograms"].get(name)
        if hist is None:
            fail(f"required histogram {name!r} absent")
        if hist["count"] < 1:
            fail(f"required histogram {name!r} recorded no samples")


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("path", help="stats JSON file, or - for stdin")
    ap.add_argument(
        "--require-hist",
        action="append",
        default=[],
        metavar="NAME",
        help="require this histogram to exist with count >= 1 (repeatable)",
    )
    args = ap.parse_args(argv)

    try:
        text = (
            sys.stdin.read()
            if args.path == "-"
            else open(args.path, encoding="utf-8").read()
        )
    except OSError as e:
        print(f"check_stats_json: cannot read {args.path}: {e}")
        return 2
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"not valid JSON: {e}")

    check(doc, args.require_hist)
    nhist = sum(1 for h in doc["histograms"].values() if h["count"] > 0)
    print(
        f"check_stats_json: OK ({args.path}: "
        f"{len(doc['histograms'])} histograms, {nhist} non-empty)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
