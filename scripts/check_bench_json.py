#!/usr/bin/env python3
"""Validate kronlab bench-harness JSON files (schema kronlab-bench-v1).

Usage: check_bench_json.py BENCH_foo.json [BENCH_bar.json ...]

Every bench target emits one JSON file through bench/harness; CI's
bench-smoke job runs this over all of them so a bench that silently stops
reporting (wrong key, NaN, truncated file) fails the build instead of
producing an unusable artifact.  Exits nonzero on the first malformed file.
"""

import json
import math
import sys

SCHEMA = "kronlab-bench-v1"

TOP_LEVEL = {
    "schema": str,
    "name": str,
    "quick": bool,
    "wall_seconds": (int, float),
    "peak_rss_bytes": int,
    "timings": list,
    "counters": dict,
    "labels": dict,
    "parallel_metrics": dict,
    "parallel_metrics_total": dict,
}

TIMING = {
    "section": str,
    "reps": int,
    "mean_seconds": (int, float),
    "min_seconds": (int, float),
    "max_seconds": (int, float),
    "stddev_seconds": (int, float),
}

KERNEL = {
    "name": str,
    "calls": int,
    "wall_seconds": (int, float),
    "busy_seconds": (int, float),
    "max_worker_seconds": (int, float),
    "chunks": int,
    "items": int,
    "max_workers": int,
    "imbalance": (int, float),
}


class Malformed(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Malformed(msg)


def check_fields(obj, spec, where):
    require(isinstance(obj, dict), f"{where}: expected object")
    for key, typ in spec.items():
        require(key in obj, f"{where}: missing key '{key}'")
        val = obj[key]
        # bool is an int subclass in Python; don't let true/false satisfy
        # a numeric field.
        require(
            isinstance(val, typ) and not (typ is not bool and isinstance(val, bool)),
            f"{where}: key '{key}' has type {type(val).__name__}",
        )
        if isinstance(val, float):
            require(math.isfinite(val), f"{where}: key '{key}' is not finite")


def check_file(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    check_fields(doc, TOP_LEVEL, path)
    require(doc["schema"] == SCHEMA,
            f"{path}: schema '{doc['schema']}' != '{SCHEMA}'")
    require(doc["name"], f"{path}: empty bench name")
    require(doc["wall_seconds"] >= 0, f"{path}: negative wall_seconds")
    require(doc["peak_rss_bytes"] >= 0, f"{path}: negative peak_rss_bytes")

    sections = set()
    for i, t in enumerate(doc["timings"]):
        where = f"{path}: timings[{i}]"
        check_fields(t, TIMING, where)
        require(t["section"] not in sections,
                f"{where}: duplicate section '{t['section']}'")
        sections.add(t["section"])
        require(t["reps"] >= 1, f"{where}: reps < 1")
        require(
            0 <= t["min_seconds"] <= t["mean_seconds"] <= t["max_seconds"],
            f"{where}: min/mean/max out of order",
        )
        require(t["stddev_seconds"] >= 0, f"{where}: negative stddev")

    for key, val in doc["counters"].items():
        where = f"{path}: counters['{key}']"
        require(isinstance(val, (int, float)) and not isinstance(val, bool),
                f"{where}: not a number")
        require(math.isfinite(float(val)), f"{where}: not finite")

    for key, val in doc["labels"].items():
        require(isinstance(val, str), f"{path}: labels['{key}']: not a string")

    last_calls = {}
    total_calls = {}
    for field, calls in (("parallel_metrics", last_calls),
                         ("parallel_metrics_total", total_calls)):
        pm = doc[field]
        require("kernels" in pm and isinstance(pm["kernels"], list),
                f"{path}: {field}.kernels missing or not a list")
        for i, k in enumerate(pm["kernels"]):
            where = f"{path}: {field}.kernels[{i}]"
            check_fields(k, KERNEL, where)
            require(k["calls"] >= 1, f"{where}: calls < 1")
            calls[k["name"]] = k["calls"]
        # Named metrics counters (metrics::counter_add) are optional —
        # present only when a subsystem published any — but when present
        # they must be a finite-number map.
        if "counters" in pm:
            require(isinstance(pm["counters"], dict),
                    f"{path}: {field}.counters is not an object")
            for key, val in pm["counters"].items():
                where = f"{path}: {field}.counters['{key}']"
                require(
                    isinstance(val, (int, float)) and not isinstance(val, bool),
                    f"{where}: not a number")
                require(math.isfinite(float(val)), f"{where}: not finite")
    # The final-rep snapshot is a subset of the whole-run total.
    for name, calls in last_calls.items():
        require(name in total_calls,
                f"{path}: kernel '{name}' in parallel_metrics but not in "
                f"parallel_metrics_total")
        require(calls <= total_calls[name],
                f"{path}: kernel '{name}' has more last-rep calls than "
                f"total calls")

    return doc["name"], len(doc["timings"]), len(doc["counters"])


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        try:
            name, n_timings, n_counters = check_file(path)
        except (OSError, json.JSONDecodeError, Malformed) as err:
            print(f"FAIL {path}: {err}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {path} (name={name}, {n_timings} timings, "
                  f"{n_counters} counters)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
