#!/usr/bin/env bash
# Reproduce every experiment: configure, build, run the full test suite,
# then regenerate every table/figure bench and record the outputs.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

echo "Done. See test_output.txt and bench_output.txt."
