#!/usr/bin/env python3
"""Validate kronlab Chrome trace-event JSON (schema kronlab-trace-v1).

Usage: check_trace_json.py [--require-event NAME ...] TRACE.json [...]

Checks the traces the bench harness (--trace) and kronlab_trace write:
the traceEvents structure, per-event phase/field types, finite numbers,
and the otherData schema tag.  --require-event NAME fails unless an event
with that exact name is present (CI uses it to assert the fault-injected
distributed run really recorded its drop/retry annotations).  Exits
nonzero on the first malformed file.
"""

import json
import math
import sys

SCHEMA = "kronlab-trace-v1"

# Phases the kronlab writer emits, and the extra fields each carries.
PHASES = {
    "X": {"dur": (int, float)},
    "i": {"s": str},
    "C": {},
    "M": {},
}


class Malformed(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Malformed(msg)


def check_number(val, where):
    require(
        isinstance(val, (int, float)) and not isinstance(val, bool),
        f"{where}: not a number",
    )
    require(math.isfinite(float(val)), f"{where}: not finite")


def check_event(ev, where):
    require(isinstance(ev, dict), f"{where}: expected object")
    require("ph" in ev and isinstance(ev["ph"], str), f"{where}: missing ph")
    ph = ev["ph"]
    require(ph in PHASES, f"{where}: unknown phase '{ph}'")
    for key in ("pid", "tid"):
        require(key in ev, f"{where}: missing {key}")
        check_number(ev[key], f"{where}.{key}")
    require("name" in ev and isinstance(ev["name"], str) and ev["name"],
            f"{where}: missing or empty name")
    if ph != "M":
        require("ts" in ev, f"{where}: missing ts")
        check_number(ev["ts"], f"{where}.ts")
        require(ev["ts"] >= 0, f"{where}: negative ts")
        require("cat" in ev and isinstance(ev["cat"], str),
                f"{where}: missing cat")
    for key, typ in PHASES[ph].items():
        require(key in ev, f"{where}: phase {ph} missing {key}")
        val = ev[key]
        require(isinstance(val, typ) and not (typ is not bool and
                                              isinstance(val, bool)),
                f"{where}.{key}: wrong type")
        if isinstance(val, float):
            require(math.isfinite(val), f"{where}.{key}: not finite")
    if ph == "X":
        require(ev["dur"] >= 0, f"{where}: negative dur")
    if ph == "C":
        args = ev.get("args")
        require(isinstance(args, dict) and "value" in args,
                f"{where}: counter without args.value")
        check_number(args["value"], f"{where}.args.value")
    if ph == "M":
        require(ev["name"] == "thread_name",
                f"{where}: unexpected metadata '{ev['name']}'")
        args = ev.get("args")
        require(isinstance(args, dict) and isinstance(args.get("name"), str),
                f"{where}: thread_name without args.name")


def check_file(path, required_events):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    require(isinstance(doc, dict), f"{path}: top level is not an object")
    require(isinstance(doc.get("traceEvents"), list),
            f"{path}: missing traceEvents array")
    other = doc.get("otherData")
    require(isinstance(other, dict), f"{path}: missing otherData")
    require(other.get("schema") == SCHEMA,
            f"{path}: otherData.schema '{other.get('schema')}' != '{SCHEMA}'")
    epoch = other.get("epoch_unix_ns")
    require(isinstance(epoch, str) and epoch.isdigit(),
            f"{path}: otherData.epoch_unix_ns must be a digit string")

    counts = {ph: 0 for ph in PHASES}
    names = set()
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"{path}: traceEvents[{i}]"
        check_event(ev, where)
        counts[ev["ph"]] += 1
        if ev["ph"] != "M":
            names.add(ev["name"])

    for name in required_events:
        require(name in names, f"{path}: required event '{name}' not found")

    return counts


def main(argv):
    required = []
    paths = []
    i = 1
    while i < len(argv):
        if argv[i] == "--require-event":
            if i + 1 >= len(argv):
                print(__doc__.strip(), file=sys.stderr)
                return 2
            required.append(argv[i + 1])
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        try:
            counts = check_file(path, required)
        except (OSError, json.JSONDecodeError, Malformed) as err:
            print(f"FAIL {path}: {err}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {path} ({counts['X']} spans, {counts['i']} instants, "
                  f"{counts['C']} counters, {counts['M']} threads)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
