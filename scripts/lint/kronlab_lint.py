#!/usr/bin/env python3
"""kronlab_lint — project-invariant lint for the kronlab C++ tree.

Rules (regex/AST-lite over comment- and string-stripped source):

  naked-new          No naked `new` / `delete` outside common/ RAII wrappers:
                     ownership lives in containers and smart pointers.
  random-source      No `rand()`, `srand()`, or `std::random_device` outside
                     src/kronlab/common/random.* — every random draw must be
                     seeded through common/random so runs stay reproducible.
  trace-span-scope   `KRONLAB_TRACE_SPAN` is an RAII declaration; as the sole
                     unbraced statement of an `if`/`for`/`while`/`else` the
                     span dies immediately and times nothing.
  no-endl            No `std::endl` in library or bench code (kernels flush
                     per line otherwise — use '\\n').
  header-guard       Every header uses `#pragma once` (no #ifndef guards —
                     one convention, checked, not discussed).
  no-assert          No C `assert()` in library code: use KRONLAB_REQUIRE /
                     KRONLAB_DBG_ASSERT so release builds keep API contracts
                     and error messages stay typed.
  durable-io         No naked `rename()` / `remove()` / write-mode `fopen()`
                     in src/, bench/, or tools/ outside the durable-io layer
                     (src/kronlab/io/): file mutation must route through
                     io::FileOps / io::publish_file / io::remove_file so the
                     commit protocol stays atomic and fault-injectable.
                     Tests and examples are exempt — they simulate corruption
                     on purpose.
  dist-send          No direct `Comm::send` calls from the sharded exchange
                     (src/kronlab/dist/sharded.cpp): application frames must
                     route through dist::Aggregator so batching, flush-reason
                     accounting, and the --no-aggregate escape hatch stay the
                     single send path.  Control-channel sends that genuinely
                     bypass aggregation carry an explicit
                     `kronlab-lint: allow(dist-send)` with a why.
  obs-log            No ad-hoc printf-family diagnostics: in src/ any
                     `printf`/`fprintf`/`fputs`-to-stderr is flagged (library
                     code emits structured obs::log events); in tools/ only
                     `fprintf(stderr, ...)` is flagged (stdout is the tool's
                     answer, stderr is operational and belongs to the
                     logger).  Deliberate CLI output (usage text, die()
                     funnels, checker findings) carries
                     `kronlab-lint: allow(obs-log)` with a why.
                     src/kronlab/obs/log.cpp (the sink itself) is exempt.

Escape hatch: a finding whose line (or the line above it) contains
`kronlab-lint: allow(<rule-id>)` is suppressed; the comment should say why.

File discovery: pass paths explicitly, or --compdb <compile_commands.json>
to lint every translation unit in the compile database plus all headers
under the repo's source roots.  With neither, the repo tree (src, bench,
tests, tools, examples) is scanned.

`--self-test` runs the rules against scripts/lint/fixtures/: every fixture
declares the rule it must trip (`// LINT-EXPECT: <rule-id>`) and the
virtual repo path it pretends to live at (`// LINT-AS: <path>`); the lint
exits non-zero if any fixture fails to trip exactly its expected rules.

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh"}
HEADER_SUFFIXES = {".hpp", ".h", ".hh"}
SOURCE_ROOTS = ("src", "bench", "tests", "tools", "examples")

ALLOW_RE = re.compile(r"kronlab-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving line
    structure (newlines survive) so reported line numbers stay true."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == '"':
            # Raw strings: R"delim( ... )delim"
            if i >= 1 and text[i - 1] == "R" and (i < 2 or not text[i - 2].isalnum()):
                m = re.match(r'"([^ ()\\\t\n]*)\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    j = text.find(close, i)
                    j = n if j == -1 else j + len(close)
                    out.append(
                        "".join(ch if ch == "\n" else " " for ch in text[i:j])
                    )
                    i = j
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append('""' + " " * max(0, j - i - 2))
            i = j
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append("''" + " " * max(0, j - i - 2))
            i = j
        else:
            out.append(c)
            i = 1 + i
    return "".join(out)


def allowed_rules(raw_lines: list[str], lineno: int) -> set[str]:
    """Rules suppressed at 1-based `lineno` (marker on the line or above)."""
    rules: set[str] = set()
    for ln in (lineno - 1, lineno - 2):
        if 0 <= ln < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[ln])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


# --- rules -----------------------------------------------------------------

NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")  # `new T`, not `Type::new_()`
PLACEMENT_NEW_RE = re.compile(r"(?<![\w.])new\s*\(")
DELETE_RE = re.compile(r"(?<![\w.:])delete(\s*\[\s*\])?\s+[\w(:*]")
DELETED_FN_RE = re.compile(r"=\s*delete\s*[;,)]")


def rule_naked_new(rel: str, stripped: list[str]):
    for idx, line in enumerate(stripped, 1):
        if DELETED_FN_RE.search(line):
            continue
        if NEW_RE.search(line) or PLACEMENT_NEW_RE.search(line):
            yield idx, "naked-new", "naked `new` — own memory via containers/smart pointers"
        elif DELETE_RE.search(line):
            yield idx, "naked-new", "naked `delete` — pair allocation with RAII instead"


RANDOM_RE = re.compile(r"(?<![\w:])s?rand\s*\(|std::random_device|(?<!\w)random_device\s+\w")


def rule_random_source(rel: str, stripped: list[str]):
    if rel.replace("\\", "/").startswith("src/kronlab/common/random"):
        return
    for idx, line in enumerate(stripped, 1):
        if RANDOM_RE.search(line):
            yield idx, "random-source", (
                "raw random source — draw through common/random so runs are "
                "seed-reproducible"
            )


UNBRACED_CTRL_RE = re.compile(r"(?:^|[;{}]|\belse\b)\s*(?:if|for|while)\s*\(")


def _is_unbraced_control_tail(prefix: str) -> bool:
    """True when `prefix` (code on/before the macro) ends an if/for/while
    header without an opening brace, i.e. the macro is its sole statement."""
    prefix = prefix.rstrip()
    if prefix.endswith("else"):
        return True
    if not prefix.endswith(")"):
        return False
    # Walk back over the balanced parenthesis group.
    depth = 0
    for i in range(len(prefix) - 1, -1, -1):
        if prefix[i] == ")":
            depth += 1
        elif prefix[i] == "(":
            depth -= 1
            if depth == 0:
                head = prefix[:i]
                return bool(re.search(r"(?:^|[;{}\s])(if|for|while)\s*$", head))
    return False


def rule_trace_span_scope(rel: str, stripped: list[str]):
    for idx, line in enumerate(stripped, 1):
        for m in re.finditer(r"KRONLAB_TRACE_SPAN(?:_D)?\s*\(", line):
            before = line[: m.start()]
            if _is_unbraced_control_tail(before):
                yield idx, "trace-span-scope", (
                    "KRONLAB_TRACE_SPAN as an unbraced control-flow body — "
                    "the span is destroyed immediately; brace the block"
                )
            elif before.strip() == "" and idx >= 2 and _is_unbraced_control_tail(
                stripped[idx - 2]
            ):
                yield idx, "trace-span-scope", (
                    "KRONLAB_TRACE_SPAN as an unbraced control-flow body — "
                    "the span is destroyed immediately; brace the block"
                )


def rule_no_endl(rel: str, stripped: list[str]):
    top = rel.replace("\\", "/").split("/", 1)[0]
    if top not in ("src", "bench"):
        return
    for idx, line in enumerate(stripped, 1):
        if "std::endl" in line:
            yield idx, "no-endl", "std::endl flushes per line — use '\\n'"


def rule_header_guard(rel: str, raw: str, stripped: list[str]):
    if Path(rel).suffix not in HEADER_SUFFIXES:
        return
    if "#pragma once" not in raw:
        yield 1, "header-guard", "header missing `#pragma once`"
        return
    for idx, line in enumerate(stripped, 1):
        if re.match(r"\s*#\s*ifndef\s+\w*_(H|HPP|H_|HPP_)\b", line):
            yield idx, "header-guard", (
                "#ifndef include guard — kronlab headers use `#pragma once` "
                "only"
            )
            return


ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")


def rule_no_assert(rel: str, stripped: list[str]):
    if not rel.replace("\\", "/").startswith("src/"):
        return
    for idx, line in enumerate(stripped, 1):
        if "static_assert" in line:
            line = line.replace("static_assert", "")
        if ASSERT_RE.search(line):
            yield idx, "no-assert", (
                "C assert() in library code — use KRONLAB_REQUIRE or "
                "KRONLAB_DBG_ASSERT (typed errors, release-mode contracts)"
            )


DURABLE_CALL_RE = re.compile(
    r"(?<![\w.:>])(?:std\s*::\s*)?(rename|remove|fopen)\s*\("
)
FOPEN_MODE_RE = re.compile(r'fopen\s*\([^;]*?,\s*"([^"]*)"')


def rule_durable_io(rel: str, raw_lines: list[str], stripped: list[str]):
    rel = rel.replace("\\", "/")
    top = rel.split("/", 1)[0]
    if top not in ("src", "bench", "tools"):
        return  # tests/examples simulate corruption directly — exempt
    if rel.startswith("src/kronlab/io/"):
        return  # the durable-io helper layer itself
    for idx, line in enumerate(stripped, 1):
        for m in DURABLE_CALL_RE.finditer(line):
            fn = m.group(1)
            if fn == "fopen":
                # Mode strings are blanked in the stripped view — inspect
                # the raw line.  Unparseable modes flag conservatively.
                raw = raw_lines[idx - 1] if idx - 1 < len(raw_lines) else ""
                mode = FOPEN_MODE_RE.search(raw)
                if mode and not set(mode.group(1)) & set("wa+"):
                    continue  # read-only open
                yield idx, "durable-io", (
                    "write-mode fopen outside src/kronlab/io/ — open through "
                    "io::FileOps so writes stay crash-safe and "
                    "fault-injectable"
                )
            else:
                yield idx, "durable-io", (
                    f"naked {fn}() outside src/kronlab/io/ — use "
                    "io::publish_file / io::remove_file (atomic, "
                    "fault-injectable) instead"
                )


DIST_SEND_RE = re.compile(r"(?<![\w:])(\w+)\s*(?:\.|->)\s*send\s*\(")


def rule_dist_send(rel: str, stripped: list[str]):
    if rel.replace("\\", "/") != "src/kronlab/dist/sharded.cpp":
        return
    for idx, line in enumerate(stripped, 1):
        for m in DIST_SEND_RE.finditer(line):
            # Sends through the aggregator object are the sanctioned path.
            if m.group(1) in ("agg", "agg_", "aggregator", "aggregator_"):
                continue
            yield idx, "dist-send", (
                "direct Comm::send from the sharded exchange — enqueue "
                "through dist::Aggregator (or annotate a control-channel "
                "send with kronlab-lint: allow(dist-send))"
            )


OBS_LOG_SRC_RE = re.compile(
    r"(?<![\w.])(?:std\s*::\s*)?(?:printf|fprintf|fputs|fputc|puts)\s*\("
)
OBS_LOG_STDERR_RE = re.compile(
    r"(?<![\w.])(?:std\s*::\s*)?(?:fprintf|fputs|fputc|fwrite)\s*\(\s*stderr"
)


def rule_obs_log(rel: str, stripped: list[str]):
    rel = rel.replace("\\", "/")
    top = rel.split("/", 1)[0]
    if rel == "src/kronlab/obs/log.cpp":
        return  # the logger's own default sink
    if top == "src":
        pattern = OBS_LOG_SRC_RE
        message = (
            "printf-family diagnostic in library code — emit a structured "
            "obs::log event instead"
        )
    elif top == "tools":
        pattern = OBS_LOG_STDERR_RE
        message = (
            "ad-hoc fprintf(stderr) in a tool — operational messages go "
            "through obs::log; deliberate CLI output needs "
            "kronlab-lint: allow(obs-log)"
        )
    else:
        return  # bench/tests/examples print freely
    for idx, line in enumerate(stripped, 1):
        if pattern.search(line):
            yield idx, "obs-log", message


def lint_file(path: Path, rel: str) -> list[Finding]:
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [Finding(rel, 0, "io", f"cannot read: {e}")]
    raw_lines = raw.splitlines()
    stripped = strip_comments_and_strings(raw).splitlines()
    # Keep both views line-aligned even for files with odd trailing state.
    while len(stripped) < len(raw_lines):
        stripped.append("")

    findings: list[Finding] = []

    def collect(hits):
        for lineno, rule, message in hits:
            if rule not in allowed_rules(raw_lines, lineno):
                findings.append(Finding(rel, lineno, rule, message))

    collect(rule_naked_new(rel, stripped))
    collect(rule_random_source(rel, stripped))
    collect(rule_trace_span_scope(rel, stripped))
    collect(rule_no_endl(rel, stripped))
    collect(rule_header_guard(rel, raw, stripped))
    collect(rule_no_assert(rel, stripped))
    collect(rule_durable_io(rel, raw_lines, stripped))
    collect(rule_dist_send(rel, stripped))
    collect(rule_obs_log(rel, stripped))
    return findings


# --- file discovery --------------------------------------------------------


def files_from_compdb(compdb: Path, root: Path) -> set[Path]:
    try:
        entries = json.loads(compdb.read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"kronlab_lint: cannot read compile database: {e}")
    files: set[Path] = set()
    for entry in entries:
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry.get("directory", ".")) / f
        f = f.resolve()
        try:
            f.relative_to(root)
        except ValueError:
            continue  # system / generated sources
        if f.suffix in CXX_SUFFIXES and f.exists():
            files.add(f)
    return files


def files_from_tree(root: Path) -> set[Path]:
    files: set[Path] = set()
    for top in SOURCE_ROOTS:
        base = root / top
        if not base.is_dir():
            continue
        for f in base.rglob("*"):
            if f.suffix in CXX_SUFFIXES and f.is_file():
                files.add(f.resolve())
    return files


def repo_root(start: Path) -> Path:
    for cand in (start, *start.parents):
        if (cand / "CMakeLists.txt").exists() and (cand / "src").is_dir():
            return cand
    return start


# --- self-test over fixtures -----------------------------------------------


def run_self_test(fixtures_dir: Path) -> int:
    fixtures = sorted(
        f for f in fixtures_dir.iterdir() if f.suffix in CXX_SUFFIXES
    )
    if not fixtures:
        print(f"kronlab_lint: no fixtures under {fixtures_dir}", file=sys.stderr)
        return 2
    failures = 0
    for fixture in fixtures:
        text = fixture.read_text()
        expected = set(re.findall(r"LINT-EXPECT:\s*([a-z-]+)", text))
        as_m = re.search(r"LINT-AS:\s*(\S+)", text)
        if not expected or not as_m:
            print(f"{fixture}: fixture needs LINT-EXPECT and LINT-AS headers")
            failures += 1
            continue
        got = {f.rule for f in lint_file(fixture, as_m.group(1))}
        if got != expected:
            print(
                f"{fixture.name}: expected rules {sorted(expected)}, "
                f"got {sorted(got) or '(clean)'}"
            )
            failures += 1
        else:
            print(f"{fixture.name}: OK ({', '.join(sorted(expected))})")
    if failures:
        print(f"kronlab_lint --self-test: {failures} fixture(s) FAILED")
        return 1
    print(f"kronlab_lint --self-test: {len(fixtures)} fixtures OK")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", type=Path, help="files or dirs to lint")
    ap.add_argument("--compdb", type=Path, help="compile_commands.json to lint")
    ap.add_argument("--root", type=Path, help="repo root (default: inferred)")
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="run the rules against scripts/lint/fixtures/",
    )
    args = ap.parse_args(argv)

    script_dir = Path(__file__).resolve().parent
    root = (args.root or repo_root(script_dir.parent.parent)).resolve()

    if args.self_test:
        return run_self_test(script_dir / "fixtures")

    files: set[Path] = set()
    if args.compdb:
        files |= files_from_compdb(args.compdb.resolve(), root)
        # The compile database only lists translation units; headers carry
        # invariants too.
        files |= {f for f in files_from_tree(root) if f.suffix in HEADER_SUFFIXES}
    explicit: set[Path] = set()
    for p in args.paths:
        p = p.resolve()
        if p.is_dir():
            explicit |= {
                f.resolve()
                for f in p.rglob("*")
                if f.suffix in CXX_SUFFIXES and f.is_file()
            }
        else:
            explicit.add(p)
    if not args.compdb and not args.paths:
        files = files_from_tree(root)

    # Fixtures are *supposed* to be dirty: exclude them from discovered
    # scans, but honor paths the caller named explicitly.
    fixtures_dir = (script_dir / "fixtures").resolve()
    files = {f for f in files if fixtures_dir not in f.parents} | explicit

    findings: list[Finding] = []
    for f in sorted(files):
        try:
            rel = str(f.relative_to(root))
        except ValueError:
            rel = str(f)
        findings.extend(lint_file(f, rel))

    for finding in findings:
        print(finding)
    if findings:
        print(f"kronlab_lint: {len(findings)} finding(s) in {len(files)} files")
        return 1
    print(f"kronlab_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
