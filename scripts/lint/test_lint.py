#!/usr/bin/env python3
"""Pytest-style test runner for kronlab_lint (stdlib unittest under the
hood so it needs no third-party packages; `python3 -m pytest` also
collects it).  Wired into ctest as `test_lint`.

Covers:
  * --self-test passes (every fixture trips exactly its expected rules);
  * each fixture, linted directly, exits non-zero;
  * the real tree exits zero (the invariants hold on HEAD);
  * the compile-database entry point works when a build dir exists;
  * the allow() escape hatch suppresses only the named rule.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

SCRIPT_DIR = Path(__file__).resolve().parent
LINT = SCRIPT_DIR / "kronlab_lint.py"
REPO = SCRIPT_DIR.parent.parent
FIXTURES = SCRIPT_DIR / "fixtures"
CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh"}


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


class TestSelfTest(unittest.TestCase):
    def test_self_test_passes(self):
        r = run_lint("--self-test")
        self.assertEqual(r.returncode, 0, msg=r.stdout + r.stderr)
        self.assertIn("fixtures OK", r.stdout)


class TestFixturesAreFlagged(unittest.TestCase):
    """Every fixture must make the lint exit non-zero on its own.

    Fixtures declare a virtual path (LINT-AS) for path-scoped rules; when
    linted directly we pass --root so the relative path falls outside every
    scoped root, so only path-independent rules apply — we therefore lint
    via --self-test semantics here and only assert direct non-zero exit for
    fixtures whose rules are path-independent.
    """

    def test_each_fixture_trips_lint(self):
        fixtures = sorted(
            f for f in FIXTURES.iterdir() if f.suffix in CXX_SUFFIXES
        )
        self.assertGreaterEqual(len(fixtures), 8, "fixture set went missing")
        r = run_lint("--self-test")
        self.assertEqual(r.returncode, 0, msg=r.stdout + r.stderr)
        for f in fixtures:
            with self.subTest(fixture=f.name):
                self.assertIn(f"{f.name}: OK", r.stdout)

    def test_fixture_dir_lint_is_nonzero(self):
        # Linting the fixture dir as real code (header rules always apply,
        # and the naked-new/span rules are path-independent) must fail.
        r = run_lint(str(FIXTURES), "--root", str(REPO))
        self.assertEqual(r.returncode, 1, msg=r.stdout + r.stderr)


class TestRealTreeIsClean(unittest.TestCase):
    def test_tree_scan_clean(self):
        r = run_lint()
        self.assertEqual(r.returncode, 0, msg=r.stdout + r.stderr)
        self.assertIn("clean", r.stdout)

    def test_compdb_scan_clean_when_available(self):
        compdb = None
        for cand in sorted(REPO.glob("build*/compile_commands.json")):
            compdb = cand
            break
        if compdb is None:
            self.skipTest("no compile_commands.json in any build dir")
        r = run_lint("--compdb", str(compdb))
        self.assertEqual(r.returncode, 0, msg=r.stdout + r.stderr)


class TestEscapeHatch(unittest.TestCase):
    def test_allow_suppresses_only_named_rule(self):
        fixture = FIXTURES / "allow_escape.cpp"
        text = fixture.read_text()
        self.assertIn("kronlab-lint: allow(naked-new)", text)
        # The fixture still expects naked-new overall (the unmarked site).
        self.assertIn("LINT-EXPECT: naked-new", text)
        r = run_lint("--self-test")
        self.assertIn("allow_escape.cpp: OK", r.stdout)


class TestRuleInteractions(unittest.TestCase):
    """Multiple rules in one file, including two on the same line where an
    allow() marker names only one — suppression is per-rule, not per-line."""

    def test_multi_rule_fixture_expectations(self):
        text = (FIXTURES / "multi_rule.cpp").read_text()
        for rule in ("naked-new", "no-endl", "no-assert"):
            self.assertIn(f"LINT-EXPECT: {rule}", text)
        r = run_lint("--self-test")
        self.assertEqual(r.returncode, 0, msg=r.stdout + r.stderr)
        self.assertIn("multi_rule.cpp: OK", r.stdout)

    def test_allowed_rule_does_not_shield_other_rule_on_same_line(self):
        # Lint under the fixture's virtual src/ path and look at the
        # allow(naked-new) line itself: its naked-new is suppressed, its
        # no-endl is not.
        sys.path.insert(0, str(SCRIPT_DIR))
        import kronlab_lint

        fixture = FIXTURES / "multi_rule.cpp"
        marked_line = next(
            i for i, line in enumerate(fixture.read_text().splitlines(), 1)
            if "STILL fires" in line
        )
        findings = kronlab_lint.lint_file(
            fixture, "src/kronlab/obs/multi_fixture.cpp"
        )
        rules_on_line = {f.rule for f in findings if f.line == marked_line}
        self.assertIn("no-endl", rules_on_line)
        self.assertNotIn("naked-new", rules_on_line)

    def test_direct_lint_suppresses_only_marked_site(self):
        # Outside src/ only path-independent rules apply: the unmarked
        # `new` fires, the allow-marked one stays quiet.
        r = run_lint(str(FIXTURES / "multi_rule.cpp"), "--root", str(REPO))
        self.assertEqual(r.returncode, 1, msg=r.stdout + r.stderr)
        self.assertEqual(r.stdout.count("[naked-new]"), 1, msg=r.stdout)

    def test_allow_marker_on_wrong_line_does_not_suppress(self):
        # The marker window is the finding's line and the line directly
        # above; two lines up must NOT suppress.
        with tempfile.TemporaryDirectory() as td:
            p = Path(td) / "wrong_line.cpp"
            p.write_text(
                "// kronlab-lint: allow(naked-new) marker is too far up\n"
                "\n"
                "int* make() { return new int(7); }\n"
            )
            r = run_lint(str(p), "--root", str(REPO))
            self.assertEqual(r.returncode, 1, msg=r.stdout + r.stderr)
            self.assertIn("naked-new", r.stdout)

    def test_allow_marker_directly_above_does_suppress(self):
        with tempfile.TemporaryDirectory() as td:
            p = Path(td) / "right_line.cpp"
            p.write_text(
                "// kronlab-lint: allow(naked-new) placement control\n"
                "int* make() { return new int(7); }\n"
            )
            r = run_lint(str(p), "--root", str(REPO))
            self.assertEqual(r.returncode, 0, msg=r.stdout + r.stderr)


class TestAnalyzerSelfTest(unittest.TestCase):
    """kronlab_analyze's fixture battery, reachable from the same runner so
    `python3 scripts/lint/test_lint.py` covers both static-analysis tools."""

    def test_analyze_self_test_passes(self):
        analyze = REPO / "scripts" / "analyze" / "kronlab_analyze.py"
        r = subprocess.run(
            [sys.executable, str(analyze), "--self-test"],
            capture_output=True, text=True, cwd=REPO,
        )
        self.assertEqual(r.returncode, 0, msg=r.stdout + r.stderr)
        self.assertIn("0 failure(s)", r.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
