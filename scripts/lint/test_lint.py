#!/usr/bin/env python3
"""Pytest-style test runner for kronlab_lint (stdlib unittest under the
hood so it needs no third-party packages; `python3 -m pytest` also
collects it).  Wired into ctest as `test_lint`.

Covers:
  * --self-test passes (every fixture trips exactly its expected rules);
  * each fixture, linted directly, exits non-zero;
  * the real tree exits zero (the invariants hold on HEAD);
  * the compile-database entry point works when a build dir exists;
  * the allow() escape hatch suppresses only the named rule.
"""

from __future__ import annotations

import subprocess
import sys
import unittest
from pathlib import Path

SCRIPT_DIR = Path(__file__).resolve().parent
LINT = SCRIPT_DIR / "kronlab_lint.py"
REPO = SCRIPT_DIR.parent.parent
FIXTURES = SCRIPT_DIR / "fixtures"
CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh"}


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


class TestSelfTest(unittest.TestCase):
    def test_self_test_passes(self):
        r = run_lint("--self-test")
        self.assertEqual(r.returncode, 0, msg=r.stdout + r.stderr)
        self.assertIn("fixtures OK", r.stdout)


class TestFixturesAreFlagged(unittest.TestCase):
    """Every fixture must make the lint exit non-zero on its own.

    Fixtures declare a virtual path (LINT-AS) for path-scoped rules; when
    linted directly we pass --root so the relative path falls outside every
    scoped root, so only path-independent rules apply — we therefore lint
    via --self-test semantics here and only assert direct non-zero exit for
    fixtures whose rules are path-independent.
    """

    def test_each_fixture_trips_lint(self):
        fixtures = sorted(
            f for f in FIXTURES.iterdir() if f.suffix in CXX_SUFFIXES
        )
        self.assertGreaterEqual(len(fixtures), 8, "fixture set went missing")
        r = run_lint("--self-test")
        self.assertEqual(r.returncode, 0, msg=r.stdout + r.stderr)
        for f in fixtures:
            with self.subTest(fixture=f.name):
                self.assertIn(f"{f.name}: OK", r.stdout)

    def test_fixture_dir_lint_is_nonzero(self):
        # Linting the fixture dir as real code (header rules always apply,
        # and the naked-new/span rules are path-independent) must fail.
        r = run_lint(str(FIXTURES), "--root", str(REPO))
        self.assertEqual(r.returncode, 1, msg=r.stdout + r.stderr)


class TestRealTreeIsClean(unittest.TestCase):
    def test_tree_scan_clean(self):
        r = run_lint()
        self.assertEqual(r.returncode, 0, msg=r.stdout + r.stderr)
        self.assertIn("clean", r.stdout)

    def test_compdb_scan_clean_when_available(self):
        compdb = None
        for cand in sorted(REPO.glob("build*/compile_commands.json")):
            compdb = cand
            break
        if compdb is None:
            self.skipTest("no compile_commands.json in any build dir")
        r = run_lint("--compdb", str(compdb))
        self.assertEqual(r.returncode, 0, msg=r.stdout + r.stderr)


class TestEscapeHatch(unittest.TestCase):
    def test_allow_suppresses_only_named_rule(self):
        fixture = FIXTURES / "allow_escape.cpp"
        text = fixture.read_text()
        self.assertIn("kronlab-lint: allow(naked-new)", text)
        # The fixture still expects naked-new overall (the unmarked site).
        self.assertIn("LINT-EXPECT: naked-new", text)
        r = run_lint("--self-test")
        self.assertIn("allow_escape.cpp: OK", r.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
