// LINT-EXPECT: header-guard
// LINT-AS: src/kronlab/graph/fixture.hpp
//
// kronlab headers use `#pragma once`; classic #ifndef guards are flagged
// for consistency (and because stale guard names silently shadow).

#ifndef KRONLAB_FIXTURE_HPP_
#define KRONLAB_FIXTURE_HPP_

#pragma once

inline int fixture_value() { return 42; }

#endif // KRONLAB_FIXTURE_HPP_
