// LINT-EXPECT: no-endl
// LINT-AS: bench/fixture.cpp
//
// std::endl flushes on every line; in kernels and benches that turns
// buffered output into one syscall per line.

#include <iostream>

void report(long long count) {
  std::cout << "butterflies = " << count << std::endl; // rule fires
}
