// LINT-EXPECT: durable-io
// LINT-AS: src/kronlab/gen/fixture.cpp
//
// Naked filesystem mutation outside src/kronlab/io/: a bare rename is not
// a commit protocol (no fsync, no fault injection), so a crash can leave a
// torn file under the final name.  All mutating file ops must route
// through io::FileOps / io::publish_file / io::remove_file.

#include <cstdio>
#include <string>

namespace kronlab {

void bad_publish(const std::string& tmp, const std::string& path) {
  std::rename(tmp.c_str(), path.c_str());           // rule fires
  rename(tmp.c_str(), path.c_str());                // rule fires (unqualified)
  std::remove(path.c_str());                        // rule fires
  std::FILE* f = std::fopen(path.c_str(), "wb");    // rule fires (write mode)
  std::FILE* g = fopen(path.c_str(), "a+");         // rule fires (append mode)
  if (f) std::fclose(f);
  if (g) std::fclose(g);
}

void fine(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");    // read-only: clean
  if (f) std::fclose(f);
  // The string literal below must not fire — strings are stripped.
  const std::string doc = "call std::rename( later";
  // One sanctioned call, reason given:
  // bootstrap path that predates io::FileOps.  kronlab-lint: allow(durable-io)
  std::rename(path.c_str(), (path + ".bak").c_str());
  (void)doc;
}

} // namespace kronlab
