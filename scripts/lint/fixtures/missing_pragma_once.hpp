// LINT-EXPECT: header-guard
// LINT-AS: src/kronlab/graph/fixture2.hpp
//
// No include guard at all: double inclusion is an ODR time bomb.

inline int fixture2_value() { return 7; }
