// LINT-EXPECT: random-source
// LINT-AS: src/kronlab/gen/fixture.cpp
//
// Unseeded randomness outside common/random breaks run-to-run
// reproducibility of generated graphs and their ground-truth counts.

#include <cstdlib>
#include <random>

int noisy_pick(int n) {
  std::random_device rd; // rule fires: nondeterministic seed source
  return static_cast<int>(rd()) % n;
}

int legacy_pick(int n) {
  return rand() % n; // rule fires: C library RNG, global hidden state
}
