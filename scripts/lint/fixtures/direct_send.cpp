// LINT-EXPECT: dist-send
// LINT-AS: src/kronlab/dist/sharded.cpp
//
// Application frames leaving the sharded exchange must go through
// dist::Aggregator — a direct Comm::send bypasses batching, the flush
// counters, and the --no-aggregate escape hatch.  Control-channel sends
// that legitimately stay unaggregated carry an allow marker saying why.
// Aggregator method calls and sends from other dist/ files must NOT trip.

struct Comm {
  void send(int to, int tag, int msg);
};

struct Aggregator {
  void enqueue(int to, int msg);
  void flush_all();
};

void exchange(Comm& comm, Aggregator& agg) {
  agg.enqueue(1, 7); // sanctioned path: not a send at all
  comm.send(1, 10, 7); // rule fires: application frame bypasses the aggregator

  // Liveness control message, deliberately unbatched so a wedged
  // aggregator cannot delay it.  kronlab-lint: allow(dist-send)
  comm.send(1, -6, 3); // suppressed by the marker above
}
