// LINT-EXPECT: trace-span-scope
// LINT-AS: src/kronlab/graph/fixture.cpp
//
// A KRONLAB_TRACE_SPAN as the sole unbraced body of a control statement is
// destroyed at the semicolon — it times nothing.

#define KRONLAB_TRACE_SPAN(cat, name) int kronlab_trace_span_dummy = 0

void count_things(bool traced) {
  if (traced) KRONLAB_TRACE_SPAN("kernel", "count"); // rule fires: dies here

  for (int i = 0; i < 3; ++i)
    KRONLAB_TRACE_SPAN("kernel", "iter"); // rule fires: unbraced loop body

  {
    KRONLAB_TRACE_SPAN("kernel", "block"); // fine: braced scope
  }
}
