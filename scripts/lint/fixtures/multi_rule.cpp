// LINT-EXPECT: naked-new
// LINT-EXPECT: no-endl
// LINT-EXPECT: no-assert
// LINT-AS: src/kronlab/obs/multi_fixture.cpp
//
// Rule-interaction fixture: several rules trip in one file, and two trip
// on the SAME line where an allow() marker names only one of them — the
// unnamed rule must still fire.  Exercises that suppression is per-rule,
// not per-line.

#include <cassert>
#include <iostream>

struct Node {
  int v = 0;
};

Node* build() {
  assert(true);                         // no-assert fires
  std::cout << "built" << std::endl;    // no-endl fires
  return new Node;                      // naked-new fires
}

Node* build_quietly() {
  // kronlab-lint: allow(naked-new) arena-owned; freed wholesale at shutdown
  Node* n = new Node; std::cout << "x" << std::endl;  // no-endl STILL fires
  return n;
}
