// LINT-EXPECT: obs-log
// LINT-AS: src/kronlab/dist/fixture.cpp
//
// Library code must not print ad-hoc diagnostics: operational events go
// through obs::log so they are leveled, structured, and capturable by
// tests.  The allow marker escapes a deliberate terminal write.

#include <cstdio>

void report_retry(int attempt) {
  // rule fires: this belongs in obs::log(warn, "dist", "retry")...
  std::fprintf(stderr, "retrying exchange, attempt %d\n", attempt);
}

void emit_banner() {
  // Startup banner intentionally bypasses the logger so it shows even
  // with KRONLAB_LOG=off.  kronlab-lint: allow(obs-log)
  std::fprintf(stderr, "kronlab fixture banner\n"); // suppressed above
}
