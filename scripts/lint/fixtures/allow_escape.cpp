// LINT-EXPECT: naked-new
// LINT-AS: src/kronlab/obs/fixture.cpp
//
// The escape hatch suppresses exactly the named rule on the next line —
// the second, unannotated `new` must still be flagged.

struct Registry {
  int n = 0;
};

Registry& leaked_singleton() {
  // Deliberately leaked: outlives detached threads.  kronlab-lint: allow(naked-new)
  static Registry* r = new Registry; // suppressed by the marker above
  return *r;
}

Registry* unmarked() {
  return new Registry; // rule fires: no allow marker
}
