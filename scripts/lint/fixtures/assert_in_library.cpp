// LINT-EXPECT: no-assert
// LINT-AS: src/kronlab/kron/fixture.cpp
//
// C assert() vanishes under NDEBUG, so a release build silently drops the
// contract; kronlab library code must use the typed project macros.
// (static_assert is fine and must NOT be flagged.)

#include <cassert>
#include <cstdint>

static_assert(sizeof(std::int64_t) == 8, "indices are 64-bit");

long long checked_square(long long n) {
  assert(n >= 0 && "negative count"); // rule fires
  return n * n;
}
