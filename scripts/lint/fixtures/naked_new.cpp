// LINT-EXPECT: naked-new
// LINT-AS: src/kronlab/graph/fixture.cpp
//
// Raw owning allocation: must be flagged.  (The string "new lines" in this
// comment must NOT be — comments are stripped before matching.)

struct Node {
  int value = 0;
};

Node* make_node() {
  return new Node(); // naked new — the rule fires here
}

void drop_node(Node* n) {
  delete n; // and here
}
