#!/usr/bin/env bash
# Exit-code contract smoke test for kronlab_gen.
#
# Scripts (CI stress steps, EXPERIMENTS recipes) branch on the generator's
# exit code, so the convention is load-bearing:
#   0 = success, 2 = usage / bad spec, 3 = io error, 4 = validation
#   failure (including durable-store corruption and stream drift).
#
# Usage: test_gen_cli.sh /path/to/kronlab_gen
set -u

GEN=${1:?usage: test_gen_cli.sh /path/to/kronlab_gen}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
fails=0

# expect <code> <label> <args...>
expect() {
  local want=$1 label=$2
  shift 2
  "$GEN" "$@" >"$WORK/out" 2>"$WORK/err"
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $label — expected exit $want, got $got" >&2
    sed 's/^/    /' "$WORK/err" >&2
    fails=$((fails + 1))
  else
    echo "ok: $label (exit $got)"
  fi
}

# --- 0: successful runs -----------------------------------------------------
expect 0 "summary run" \
  --left tritail:1 --right kbip:2,3 --summary
expect 0 "durable generation" \
  --left tritail:1 --right kbip:2,3 --out "$WORK/store" \
  --shards 2 --segment-edges 32
expect 0 "durable verify" \
  --left tritail:1 --right kbip:2,3 --out "$WORK/store" --verify
expect 0 "resume of a complete store is a no-op" \
  --left tritail:1 --right kbip:2,3 --out "$WORK/store" --resume \
  --shards 2 --segment-edges 32

# --- 2: usage errors --------------------------------------------------------
expect 2 "missing required flags" --summary
expect 2 "unknown flag" --left tritail:1 --right kbip:2,3 --bogus
expect 2 "bad mode" --left tritail:1 --right kbip:2,3 --mode x
expect 2 "bad spec" --left nosuch:1 --right kbip:2,3
expect 2 "--resume without --out" --left tritail:1 --right kbip:2,3 --resume
expect 2 "--resume with --verify" \
  --left tritail:1 --right kbip:2,3 --out "$WORK/store" --resume --verify
expect 2 "--scale without raw mode" \
  --left tritail:1 --right kbip:2,3 --scale 2 --mode i

# --- 3: io errors -----------------------------------------------------------
expect 3 "edge list into unwritable path" \
  --left tritail:1 --right kbip:2,3 --edges "$WORK/nodir/edges.el"
expect 3 "fresh run refuses an existing store" \
  --left tritail:1 --right kbip:2,3 --out "$WORK/store" \
  --shards 2 --segment-edges 32
expect 3 "verify of a store with no manifest" \
  --left tritail:1 --right kbip:2,3 --out "$WORK/empty" --verify

# --- 4: validation failures -------------------------------------------------
expect 4 "mode i rejects a bipartite left factor" \
  --left kbip:2,2 --right kbip:2,3 --mode i
# Resuming with a different generation spec must refuse, not overwrite.
expect 4 "resume against a different spec" \
  --left tritail:2 --right kbip:2,3 --out "$WORK/store" --resume \
  --shards 2 --segment-edges 32
# A flipped payload byte must fail checksum verification.
seg=$(ls "$WORK/store"/shard-0000-seg-*.krnlseg | head -n1)
printf '\xff' | dd of="$seg" bs=1 seek=64 count=1 conv=notrunc status=none
expect 4 "verify catches a corrupted segment" \
  --left tritail:1 --right kbip:2,3 --out "$WORK/store" --verify

if [ "$fails" -ne 0 ]; then
  echo "$fails exit-code contract check(s) failed" >&2
  exit 1
fi
echo "all kronlab_gen exit-code contract checks passed"
