// kronlab_query — one-shot client for a running kronlab_served.
//
// Connects over TCP or a Unix-domain socket, issues one command, prints
// the answer, and exits.  Retries on timeout per --attempts/--timeout
// (safe: every probe is a pure read and samples are seeded).
//
// Examples:
//   kronlab_query --tcp 40123 stats
//   kronlab_query --unix /tmp/kronlab.sock vertex 17
//   kronlab_query --unix /tmp/kronlab.sock edge 3 1290
//   kronlab_query --tcp 40123 hist 1 64
//   kronlab_query --tcp 40123 sample-edge 42
//   kronlab_query --tcp 40123 --stats          # live telemetry JSON
//   kronlab_query --tcp 40123 server-stats prom
//
// Exit codes: 0 = answered (including "not an edge"), 2 = usage,
// 3 = io / timeout, 1 = anything else.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "kronlab/kronlab.hpp"

using namespace kronlab;

namespace {

struct Options {
  int tcp_port = -1;
  std::string unix_path;
  serve::RetryPolicy retry;
  std::vector<std::string> command;
};

[[noreturn]] void usage(const char* argv0, int code) {
  // Usage text is CLI output for the invoking human, not an operational
  // event — it stays printf-family by design.
  // kronlab-lint: allow(obs-log)
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: %s (--tcp PORT | --unix PATH) [--timeout MS] [--attempts N]\n"
      "          COMMAND\n\n"
      "commands:\n"
      "  vertex P         exact record of product vertex P (0-based)\n"
      "  edge P Q         exact record of product edge (P, Q)\n"
      "  hist LO HI       degree histogram restricted to LO <= d <= HI\n"
      "  sample-vertex S  uniform vertex probe, seeded by S\n"
      "  sample-edge S    uniform edge probe, seeded by S\n"
      "  stats            global graph statistics\n"
      "  server-stats [json|prom]  live server telemetry snapshot\n"
      "                   (per-verb latency histograms, queue depth,\n"
      "                   cache hit rate); --stats is shorthand for\n"
      "                   'server-stats json'\n",
      argv0);
  std::exit(code);
}

/// One-shot CLI: diagnostics go straight to the invoking terminal, then
/// the usage text and exit code 2.
[[noreturn]] void die_usage(const char* argv0, const std::string& msg) {
  // kronlab-lint: allow(obs-log)
  std::fprintf(stderr, "kronlab_query: %s\n", msg.c_str());
  usage(argv0, 2);
}

/// Runtime-failure funnel (timeouts, io errors): message, then exit.
[[noreturn]] void die(int code, const std::string& msg) {
  // kronlab-lint: allow(obs-log)
  std::fprintf(stderr, "kronlab_query: %s\n", msg.c_str());
  std::exit(code);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        die_usage(argv[0], std::string(flag) + " requires a value");
      }
      return argv[++i];
    };
    if (arg == "--tcp") {
      opt.tcp_port = static_cast<int>(
          std::strtoll(need_value("--tcp").c_str(), nullptr, 10));
    } else if (arg == "--unix") {
      opt.unix_path = need_value("--unix");
    } else if (arg == "--timeout") {
      opt.retry.timeout = std::chrono::milliseconds(
          std::strtoll(need_value("--timeout").c_str(), nullptr, 10));
    } else if (arg == "--attempts") {
      opt.retry.attempts = static_cast<int>(
          std::strtoll(need_value("--attempts").c_str(), nullptr, 10));
    } else if (arg == "--stats") {
      opt.command = {"server-stats", "json"};
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      break; // first non-flag word starts the command
    }
  }
  if (i < argc && !opt.command.empty()) {
    die_usage(argv[0], "--stats cannot be combined with a command");
  }
  for (; i < argc; ++i) opt.command.emplace_back(argv[i]);
  if ((opt.tcp_port < 0) == opt.unix_path.empty()) {
    die_usage(argv[0], "exactly one of --tcp / --unix is required");
  }
  if (opt.retry.attempts < 1) {
    die_usage(argv[0], "--attempts requires at least 1");
  }
  if (opt.command.empty()) {
    die_usage(argv[0], "a command is required");
  }
  return opt;
}

serve::word_t parse_word(const std::string& s, const char* what,
                         char** argv) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    die_usage(argv[0], std::string(what) + " must be an integer, got '" +
                           s + "'");
  }
  return v;
}

void expect_args(const Options& opt, std::size_t n, char** argv) {
  if (opt.command.size() != n + 1) {
    die_usage(argv[0], "command '" + opt.command[0] + "' takes " +
                           std::to_string(n) + " argument" +
                           (n == 1 ? "" : "s"));
  }
}

void print_vertex(const kron::VertexRecord& r) {
  std::printf("vertex %lld: degree %lld, two_hop %lld, squares %lld, "
              "closure %.6f\n",
              static_cast<long long>(r.p),
              static_cast<long long>(r.degree),
              static_cast<long long>(r.two_hop),
              static_cast<long long>(r.squares), r.closure);
}

void print_edge(const kron::EdgeRecord& r) {
  std::printf("edge (%lld, %lld): degrees (%lld, %lld), squares %lld, "
              "gamma %.6f\n",
              static_cast<long long>(r.p), static_cast<long long>(r.q),
              static_cast<long long>(r.degree_p),
              static_cast<long long>(r.degree_q),
              static_cast<long long>(r.squares), r.gamma);
}

} // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    auto transport = opt.unix_path.empty()
                         ? serve::connect_tcp("127.0.0.1", opt.tcp_port)
                         : serve::connect_unix(opt.unix_path);
    serve::Client client(std::move(transport), opt.retry);

    const std::string& cmd = opt.command[0];
    if (cmd == "vertex") {
      expect_args(opt, 1, argv);
      print_vertex(client.vertex(parse_word(opt.command[1], "P", argv)));
    } else if (cmd == "edge") {
      expect_args(opt, 2, argv);
      const auto r = client.try_edge(parse_word(opt.command[1], "P", argv),
                                     parse_word(opt.command[2], "Q", argv));
      if (r) {
        print_edge(*r);
      } else {
        std::printf("not an edge\n");
      }
    } else if (cmd == "hist") {
      expect_args(opt, 2, argv);
      const auto pairs = client.degree_histogram(
          parse_word(opt.command[1], "LO", argv),
          parse_word(opt.command[2], "HI", argv));
      for (const auto& [degree, vertices] : pairs) {
        std::printf("degree %lld: %lld vertices\n",
                    static_cast<long long>(degree),
                    static_cast<long long>(vertices));
      }
    } else if (cmd == "sample-vertex") {
      expect_args(opt, 1, argv);
      print_vertex(client.sample_vertex(static_cast<std::uint64_t>(
          parse_word(opt.command[1], "SEED", argv))));
    } else if (cmd == "sample-edge") {
      expect_args(opt, 1, argv);
      print_edge(client.sample_edge(static_cast<std::uint64_t>(
          parse_word(opt.command[1], "SEED", argv))));
    } else if (cmd == "stats") {
      expect_args(opt, 0, argv);
      const auto s = client.stats();
      std::printf("vertices %lld\nedges %lld\nglobal 4-cycles %lld\n",
                  static_cast<long long>(s.num_vertices),
                  static_cast<long long>(s.num_edges),
                  static_cast<long long>(s.global_squares));
    } else if (cmd == "server-stats") {
      if (opt.command.size() > 2) expect_args(opt, 1, argv);
      auto format = serve::StatsFormat::json;
      if (opt.command.size() == 2) {
        if (opt.command[1] == "prom" || opt.command[1] == "prometheus") {
          format = serve::StatsFormat::prometheus;
        } else if (opt.command[1] != "json") {
          die_usage(argv[0], "server-stats format must be json or prom");
        }
      }
      const std::string text = client.server_stats(format);
      std::fwrite(text.data(), 1, text.size(), stdout);
      if (text.empty() || text.back() != '\n') std::printf("\n");
    } else {
      die_usage(argv[0], "unknown command: " + cmd);
    }
    return 0;
  } catch (const timeout_error& e) {
    die(3, std::string("timeout: ") + e.what());
  } catch (const io_error& e) {
    die(3, std::string("io error: ") + e.what());
  } catch (const invalid_argument& e) {
    die(2, e.what());
  } catch (const std::exception& e) {
    die(1, std::string("unexpected error: ") + e.what());
  }
}
