// kronlab_trace — inspect, convert, and compare kronlab trace files.
//
//   convert [-o OUT.json] IN...   merge trace files onto one clock-aligned
//                                 timeline and write Chrome trace JSON
//                                 (load in Perfetto / chrome://tracing)
//   summary IN                    per-category span table (count, total,
//                                 self time) plus the critical path
//   diff A B                      per-span-name totals of B against A
//
// Every command accepts both the compact binary format ("KRNLTRC1",
// written by --trace dirs and per-rank dist runs) and the Chrome JSON the
// library itself exports — the JSON reader understands exactly the subset
// chrome_json() emits.
//
// Exit codes: 0 ok, 2 usage, 3 unreadable file, 4 unparsable content.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/common/registry.hpp"
#include "kronlab/obs/trace.hpp"

using kronlab::trace::Kind;
using kronlab::trace::TraceEvent;
using kronlab::trace::TraceFile;

namespace {

[[noreturn]] void usage(int code) {
  // Usage text is CLI output for the invoking human, not an operational
  // event — it stays printf-family by design.
  // kronlab-lint: allow(obs-log)
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: kronlab_trace convert [-o OUT.json] IN...\n"
               "       kronlab_trace summary IN\n"
               "       kronlab_trace diff A B\n\n"
               "IN/A/B are KRNLTRC1 binaries (.trace/.bin) or the Chrome\n"
               "trace JSON kronlab writes.\n");
  std::exit(code);
}

/// Failure funnel: message to the terminal, then exit.  Exit codes:
/// 0 ok, 2 usage, 3 unreadable file, 4 unparsable content.
[[noreturn]] void die(int code, const std::string& msg) {
  // kronlab-lint: allow(obs-log)
  std::fprintf(stderr, "kronlab_trace: %s\n", msg.c_str());
  std::exit(code);
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the Chrome traces we emit.

struct Json {
  enum class Type { null, boolean, number, string, array, object } type =
      Type::null;
  bool b = false;
  double n = 0.0;
  std::string s;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  [[nodiscard]] const Json* get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct JsonParser {
  const char* p;
  const char* end;

  [[noreturn]] void fail(const char* what) const {
    throw kronlab::io_error(std::string("trace JSON: ") + what);
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }

  void expect(char c, const char* what) {
    if (!eat(c)) fail(what);
  }

  std::string parse_string() {
    expect('"', "expected string");
    std::string out;
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p >= end) fail("truncated escape");
        const char e = *p++;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (end - p < 4) fail("truncated \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p++;
              v <<= 4;
              if (h >= '0' && h <= '9') {
                v += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                v += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                v += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            // Our writer only escapes control characters this way.
            out += v < 0x80 ? static_cast<char>(v) : '?';
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    if (p >= end) fail("unterminated string");
    ++p; // closing quote
    return out;
  }

  Json parse_value() {
    skip_ws();
    if (p >= end) fail("unexpected end of input");
    Json v;
    const char c = *p;
    if (c == '{') {
      ++p;
      v.type = Json::Type::object;
      if (!eat('}')) {
        do {
          std::string key = parse_string();
          expect(':', "expected ':' in object");
          v.obj.emplace_back(std::move(key), parse_value());
        } while (eat(','));
        expect('}', "expected '}'");
      }
    } else if (c == '[') {
      ++p;
      v.type = Json::Type::array;
      if (!eat(']')) {
        do {
          v.arr.push_back(parse_value());
        } while (eat(','));
        expect(']', "expected ']'");
      }
    } else if (c == '"') {
      v.type = Json::Type::string;
      v.s = parse_string();
    } else if (c == 't' && end - p >= 4 && std::memcmp(p, "true", 4) == 0) {
      v.type = Json::Type::boolean;
      v.b = true;
      p += 4;
    } else if (c == 'f' && end - p >= 5 && std::memcmp(p, "false", 5) == 0) {
      v.type = Json::Type::boolean;
      p += 5;
    } else if (c == 'n' && end - p >= 4 && std::memcmp(p, "null", 4) == 0) {
      p += 4;
    } else {
      char* num_end = nullptr;
      v.type = Json::Type::number;
      v.n = std::strtod(p, &num_end);
      if (num_end == p || num_end > end) fail("bad number");
      p = num_end;
    }
    return v;
  }
};

Json parse_json(const std::string& text) {
  JsonParser parser{text.data(), text.data() + text.size()};
  Json v = parser.parse_value();
  parser.skip_ws();
  if (parser.p != parser.end) parser.fail("trailing garbage");
  return v;
}

/// Decode the Chrome trace JSON chrome_json() writes back into events.
TraceFile from_chrome_json(const std::string& text) {
  const Json root = parse_json(text);
  if (root.type != Json::Type::object) {
    throw kronlab::io_error("trace JSON: top level is not an object");
  }
  const Json* events = root.get("traceEvents");
  if (events == nullptr || events->type != Json::Type::array) {
    throw kronlab::io_error("trace JSON: missing traceEvents array");
  }
  TraceFile out;
  if (const Json* other = root.get("otherData")) {
    if (const Json* epoch = other->get("epoch_unix_ns")) {
      out.epoch_unix_ns = std::strtoull(epoch->s.c_str(), nullptr, 10);
    }
  }
  std::map<std::uint32_t, std::string> names;
  const auto str_of = [](const Json* j) {
    return j != nullptr && j->type == Json::Type::string ? j->s
                                                         : std::string();
  };
  const auto num_of = [](const Json* j) {
    return j != nullptr && j->type == Json::Type::number ? j->n : 0.0;
  };
  for (const Json& ev : events->arr) {
    const std::string ph = str_of(ev.get("ph"));
    const auto tid = static_cast<std::uint32_t>(num_of(ev.get("tid")));
    if (ph == "M") {
      if (const Json* args = ev.get("args")) {
        names[tid] = str_of(args->get("name"));
      }
      continue;
    }
    TraceEvent e;
    e.tid = tid;
    e.ts_ns = static_cast<std::uint64_t>(
        std::llround(num_of(ev.get("ts")) * 1e3));
    e.name = str_of(ev.get("name"));
    e.cat = str_of(ev.get("cat"));
    const Json* args = ev.get("args");
    if (ph == "X") {
      e.kind = Kind::span;
      e.dur_ns = static_cast<std::uint64_t>(
          std::llround(num_of(ev.get("dur")) * 1e3));
      if (args) e.detail = str_of(args->get("detail"));
    } else if (ph == "i") {
      e.kind = Kind::instant;
      if (args) e.detail = str_of(args->get("detail"));
    } else if (ph == "C") {
      e.kind = Kind::counter;
      if (args) e.value = num_of(args->get("value"));
    } else {
      continue; // phases we never write
    }
    out.events.push_back(std::move(e));
  }
  for (auto& e : out.events) {
    const auto it = names.find(e.tid);
    e.thread_name = it != names.end()
                        ? it->second
                        : "thread " + std::to_string(e.tid);
  }
  return out;
}

/// Load one trace of either format, sniffing the binary magic.
TraceFile load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    die(3, "cannot open " + path);
  }
  char magic[8] = {};
  f.read(magic, sizeof magic);
  f.close();
  try {
    if (std::memcmp(magic, kronlab::magic::kTrc1, 8) == 0) {
      return kronlab::trace::read_binary_file(path);
    }
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return from_chrome_json(text.str());
  } catch (const std::exception& e) {
    die(4, path + ": " + e.what());
  }
}

std::string fmt_ms(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f ms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

// ---------------------------------------------------------------------------
// convert

int cmd_convert(const std::vector<std::string>& args) {
  std::string out_path;
  std::vector<std::string> inputs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o") {
      if (i + 1 >= args.size()) usage(2);
      out_path = args[++i];
    } else {
      inputs.push_back(args[i]);
    }
  }
  if (inputs.empty()) usage(2);
  if (out_path.empty()) {
    if (inputs.size() == 1) {
      out_path = inputs.front();
      const auto dot = out_path.find_last_of('.');
      if (dot != std::string::npos) out_path.resize(dot);
      out_path += ".json";
    } else {
      out_path = "merged_trace.json";
    }
  }
  std::vector<TraceFile> files;
  files.reserve(inputs.size());
  for (const auto& in : inputs) files.push_back(load(in));
  std::uint64_t epoch = files.front().epoch_unix_ns;
  for (const auto& f : files) {
    epoch = epoch == 0 ? f.epoch_unix_ns : std::min(epoch, f.epoch_unix_ns);
  }
  const auto merged = kronlab::trace::merge(files);
  try {
    kronlab::trace::write_chrome_file(out_path, merged, epoch);
  } catch (const std::exception& e) {
    die(3, e.what());
  }
  std::printf("wrote %s (%zu events from %zu file%s)\n", out_path.c_str(),
              merged.size(), files.size(), files.size() == 1 ? "" : "s");
  return 0;
}

// ---------------------------------------------------------------------------
// summary

struct SpanRef {
  const TraceEvent* ev;
  std::uint64_t self_ns;
};

struct CatStats {
  std::uint64_t spans = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

/// Per-span self time: a span's duration minus the durations of spans
/// nested directly inside it on the same thread.
std::vector<SpanRef> compute_self_times(const std::vector<TraceEvent>& evs) {
  // Parents sort before their children: earlier start first, and at equal
  // starts the longer (enclosing) span first.
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const auto& e : evs) {
    if (e.kind == Kind::span) by_tid[e.tid].push_back(&e);
  }
  std::vector<SpanRef> out;
  for (auto& [tid, spans] : by_tid) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->ts_ns != b->ts_ns) return a->ts_ns < b->ts_ns;
                       return a->dur_ns > b->dur_ns;
                     });
    std::vector<std::size_t> stack; // indices into `out`
    for (const TraceEvent* e : spans) {
      while (!stack.empty()) {
        const TraceEvent* top = out[stack.back()].ev;
        if (top->ts_ns + top->dur_ns >= e->ts_ns + e->dur_ns &&
            top->ts_ns <= e->ts_ns) {
          break; // still inside the enclosing span
        }
        stack.pop_back();
      }
      if (!stack.empty()) {
        auto& parent = out[stack.back()];
        parent.self_ns -= std::min(parent.self_ns, e->dur_ns);
      }
      out.push_back({e, e->dur_ns});
      stack.push_back(out.size() - 1);
    }
  }
  return out;
}

/// Longest top-level span, then its longest direct child, and so on.
std::vector<const TraceEvent*> critical_path(
    const std::vector<TraceEvent>& evs) {
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const auto& e : evs) {
    if (e.kind == Kind::span) by_tid[e.tid].push_back(&e);
  }
  const TraceEvent* root = nullptr;
  for (const auto& [tid, spans] : by_tid) {
    for (const TraceEvent* e : spans) {
      if (root == nullptr || e->dur_ns > root->dur_ns) root = e;
    }
  }
  std::vector<const TraceEvent*> path;
  while (root != nullptr) {
    path.push_back(root);
    const TraceEvent* best = nullptr;
    for (const TraceEvent* e : by_tid[root->tid]) {
      if (e == root || e->ts_ns < root->ts_ns ||
          e->ts_ns + e->dur_ns > root->ts_ns + root->dur_ns ||
          e->dur_ns >= root->dur_ns) {
        continue;
      }
      // Direct or transitive child; the longest one is on the path either
      // way since we recurse into it next.
      if (best == nullptr || e->dur_ns > best->dur_ns) best = e;
    }
    if (best != nullptr && path.size() >= 32) best = nullptr; // cycle guard
    root = best;
  }
  return path;
}

int cmd_summary(const std::vector<std::string>& args) {
  if (args.size() != 1) usage(2);
  const TraceFile tf = load(args.front());
  std::size_t instants = 0, counters = 0;
  for (const auto& e : tf.events) {
    instants += e.kind == Kind::instant ? 1 : 0;
    counters += e.kind == Kind::counter ? 1 : 0;
  }
  const auto spans = compute_self_times(tf.events);
  std::map<std::string, CatStats> cats;
  for (const auto& s : spans) {
    auto& c = cats[s.ev->cat];
    ++c.spans;
    c.total_ns += s.ev->dur_ns;
    c.self_ns += s.self_ns;
  }
  std::printf("%s: %zu events (%zu spans, %zu instants, %zu counters)\n\n",
              args.front().c_str(), tf.events.size(), spans.size(),
              instants, counters);
  std::printf("%-12s %8s %14s %14s\n", "category", "spans", "total",
              "self");
  std::vector<std::pair<std::string, CatStats>> rows(cats.begin(),
                                                     cats.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.self_ns > b.second.self_ns;
  });
  for (const auto& [cat, st] : rows) {
    std::printf("%-12s %8llu %14s %14s\n", cat.c_str(),
                static_cast<unsigned long long>(st.spans),
                fmt_ms(st.total_ns).c_str(), fmt_ms(st.self_ns).c_str());
  }
  // Registry cross-reference: the bench harness (and any caller of
  // trace::counter with cat "stats") exports obs/stats registry values
  // as counter events; surface their final values next to the timing
  // table so one file answers "how long" and "how much".
  std::map<std::string, double> registry;
  for (const auto& e : tf.events) {
    if (e.kind == Kind::counter && e.cat == "stats") {
      registry[e.name] = e.value; // last write wins
    }
  }
  if (!registry.empty()) {
    std::printf("\nregistry counters (obs/stats):\n");
    for (const auto& [name, value] : registry) {
      std::printf("  %-40s %.3f\n", name.c_str(), value);
    }
  }
  const auto path = critical_path(tf.events);
  if (!path.empty()) {
    std::printf("\ncritical path (longest span, descending):\n");
    std::string indent;
    for (const TraceEvent* e : path) {
      std::printf("  %s%s/%s  %s\n", indent.c_str(), e->cat.c_str(),
                  e->name.c_str(), fmt_ms(e->dur_ns).c_str());
      indent += "  ";
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// diff

int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() != 2) usage(2);
  const TraceFile a = load(args[0]);
  const TraceFile b = load(args[1]);
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  const auto aggregate = [](const TraceFile& tf) {
    std::map<std::string, Agg> out;
    for (const auto& e : tf.events) {
      if (e.kind != Kind::span) continue;
      auto& agg = out[e.cat + "/" + e.name];
      ++agg.count;
      agg.total_ns += e.dur_ns;
    }
    return out;
  };
  const auto aa = aggregate(a);
  const auto bb = aggregate(b);
  std::map<std::string, std::pair<Agg, Agg>> joined;
  for (const auto& [key, agg] : aa) joined[key].first = agg;
  for (const auto& [key, agg] : bb) joined[key].second = agg;
  std::vector<std::pair<std::string, std::pair<Agg, Agg>>> rows(
      joined.begin(), joined.end());
  std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
    const auto dx = std::llabs(static_cast<long long>(x.second.second.total_ns) -
                               static_cast<long long>(x.second.first.total_ns));
    const auto dy = std::llabs(static_cast<long long>(y.second.second.total_ns) -
                               static_cast<long long>(y.second.first.total_ns));
    return dx > dy;
  });
  std::printf("%-40s %14s %14s %10s\n", "span", "A total", "B total",
              "B/A");
  for (const auto& [key, pair] : rows) {
    const auto& [x, y] = pair;
    const double ratio =
        x.total_ns > 0
            ? static_cast<double>(y.total_ns) /
                  static_cast<double>(x.total_ns)
            : 0.0;
    std::printf("%-40s %14s %14s %9.2fx\n", key.c_str(),
                fmt_ms(x.total_ns).c_str(), fmt_ms(y.total_ns).c_str(),
                ratio);
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(2);
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "--help" || cmd == "-h") usage(0);
  if (cmd == "convert") return cmd_convert(args);
  if (cmd == "summary") return cmd_summary(args);
  if (cmd == "diff") return cmd_diff(args);
  // kronlab-lint: allow(obs-log)
  std::fprintf(stderr, "kronlab_trace: unknown command '%s'\n", cmd.c_str());
  usage(2);
}
