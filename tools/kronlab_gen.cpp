// kronlab_gen — command-line bipartite Kronecker generator.
//
// Generates C = M ⊗ B from two factor specs, streams the edge list to a
// file (or stdout), and reports exact ground-truth statistics.
//
// Examples:
//   kronlab_gen --left tritail:1 --right kbip:3,4 --mode i --summary
//   kronlab_gen --left unicode --right unicode --mode raw
//               --edges /tmp/c.el --truth /tmp/c.truth
//   (the unicode stand-in is disconnected, so modes i/ii — which validate
//   Thm 1/2's connectivity hypotheses — reject it; use raw, as §IV does)
//   kronlab_gen --left nonbip:20,60,7 --right prefbip:100,150,400,9
//               --mode raw --summary
//
// Modes: i  = Assumption 1(i)  (left factor non-bipartite, validated)
//        ii = Assumption 1(ii) (left factor gets full self loops)
//        raw = structural checks only (loop-free right factor)
//
// The --truth file contains one "p q squares" line per undirected edge —
// the validation oracle a system under test is scored against.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "kronlab/kronlab.hpp"
#include "kronlab/obs/log.hpp"

using namespace kronlab;

namespace {

struct Options {
  std::string left, right;
  std::string mode = "raw";
  std::string edges_path;
  std::string truth_path;
  index_t shards = 0; ///< if > 0, write edge list as N shard files
  bool summary = false;

  // Durable streaming generation (io/stream_gen.hpp).
  std::string out_dir;   ///< durable store directory; empty = off
  bool resume = false;   ///< continue a crashed run in out_dir
  bool verify = false;   ///< verify an existing store instead of writing
  bool validate = true;  ///< on-the-fly oracle validation
  int scale = 1;         ///< right factor Kronecker power in the chain
  count_t segment_edges = 1 << 14;
};

[[noreturn]] void usage(const char* argv0, int code) {
  // Usage text is CLI output for the invoking human, not an operational
  // event — it stays printf-family by design.
  // kronlab-lint: allow(obs-log)
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: %s --left SPEC --right SPEC [--mode i|ii|raw]\n"
      "          [--edges FILE] [--truth FILE] [--summary]\n"
      "          [--out DIR [--resume|--verify]] [--scale N]\n\n"
      "factor SPEC forms:\n%s\n\n"
      "--edges  write the product edge list (1-based 'p q' lines)\n"
      "--shards N  with --edges: write N row-partitioned shard files\n"
      "            FILE.0 .. FILE.N-1 instead of one file;\n"
      "            with --out: number of durable output shards (default 4)\n"
      "--truth  write 'p q squares' ground-truth lines per edge\n"
      "--summary print exact global statistics\n\n"
      "durable streaming generation:\n"
      "--out DIR      stream edges into a crash-tolerant durable store\n"
      "               (KRNLSEG1 segments + KRNLMAN1 manifest)\n"
      "--resume       continue a previously killed run in DIR\n"
      "--verify       re-read and validate a complete store in DIR\n"
      "--scale N      product is left (x) right^(x)N, collapsed into two\n"
      "               halves (raw mode only for N > 1)\n"
      "--segment-edges N  records per segment / commit grain (default %d)\n"
      "--no-validate  skip on-the-fly ground-truth validation\n",
      argv0, gen::graph_spec_help().c_str(), 1 << 14);
  std::exit(code);
}

/// CLI argument diagnostics go straight to the terminal, then the usage
/// text and exit code 2.
[[noreturn]] void die_usage(const char* argv0, const std::string& msg) {
  // kronlab-lint: allow(obs-log)
  std::fprintf(stderr, "kronlab_gen: %s\n", msg.c_str());
  usage(argv0, 2);
}

/// Runtime-failure funnel: message to the terminal, then exit.
/// Exit codes: 2 = usage / bad spec, 3 = io, 4 = validation failure,
/// 1 = anything else.  Scripts branching on the generator's outcome
/// depend on these staying distinct.
[[noreturn]] void die(int code, const std::string& msg) {
  // kronlab-lint: allow(obs-log)
  std::fprintf(stderr, "kronlab_gen: %s\n", msg.c_str());
  std::exit(code);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        die_usage(argv[0], std::string(flag) + " requires a value");
      }
      return argv[++i];
    };
    if (arg == "--left") {
      opt.left = need_value("--left");
    } else if (arg == "--right") {
      opt.right = need_value("--right");
    } else if (arg == "--mode") {
      opt.mode = need_value("--mode");
    } else if (arg == "--edges") {
      opt.edges_path = need_value("--edges");
    } else if (arg == "--truth") {
      opt.truth_path = need_value("--truth");
    } else if (arg == "--shards") {
      opt.shards = std::strtoll(need_value("--shards").c_str(), nullptr, 10);
      if (opt.shards < 1) {
        die_usage(argv[0], "--shards requires a positive integer");
      }
    } else if (arg == "--summary") {
      opt.summary = true;
    } else if (arg == "--out") {
      opt.out_dir = need_value("--out");
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--verify") {
      opt.verify = true;
    } else if (arg == "--no-validate") {
      opt.validate = false;
    } else if (arg == "--scale") {
      opt.scale = static_cast<int>(
          std::strtoll(need_value("--scale").c_str(), nullptr, 10));
      if (opt.scale < 1) {
        die_usage(argv[0], "--scale requires a positive integer");
      }
    } else if (arg == "--segment-edges") {
      opt.segment_edges =
          std::strtoll(need_value("--segment-edges").c_str(), nullptr, 10);
      if (opt.segment_edges < 1) {
        die_usage(argv[0], "--segment-edges requires a positive integer");
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      die_usage(argv[0], "unknown argument: " + arg);
    }
  }
  if (opt.left.empty() || opt.right.empty()) {
    die_usage(argv[0], "--left and --right are required");
  }
  if (opt.mode != "i" && opt.mode != "ii" && opt.mode != "raw") {
    die_usage(argv[0], "--mode must be i, ii, or raw");
  }
  if ((opt.resume || opt.verify) && opt.out_dir.empty()) {
    die_usage(argv[0], "--resume/--verify require --out DIR");
  }
  if (opt.resume && opt.verify) {
    die_usage(argv[0], "--resume and --verify are mutually exclusive");
  }
  if (opt.scale > 1 && opt.mode != "raw") {
    die_usage(argv[0], "--scale > 1 requires --mode raw (the collapsed "
                       "chain is not a validated Assumption 1 pair)");
  }
  if (!opt.summary && opt.edges_path.empty() && opt.truth_path.empty() &&
      opt.out_dir.empty()) {
    opt.summary = true; // doing nothing would be surprising
  }
  return opt;
}

} // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    const auto a = gen::parse_graph_spec(opt.left);
    const auto b = gen::parse_graph_spec(opt.right);
    const auto kp = [&] {
      if (opt.scale > 1) {
        // C = left (x) right^(x)scale: collapse the validated chain into
        // two materialized halves (each ~sqrt of the product) and stream
        // through the ordinary pair machinery — every ground-truth
        // identity is (x)-associative, so the oracle is exact either way.
        std::vector<graph::Adjacency> factors;
        factors.reserve(static_cast<std::size_t>(opt.scale) + 1);
        factors.push_back(a);
        for (int f = 0; f < opt.scale; ++f) factors.push_back(b);
        auto [l, r] = kron::ChainKronecker::of(std::move(factors))
                          .collapse_pair();
        return kron::BipartiteKronecker::raw(std::move(l), std::move(r));
      }
      if (opt.mode == "i") {
        return kron::BipartiteKronecker::assumption_i(a, b);
      }
      if (opt.mode == "ii") {
        return kron::BipartiteKronecker::assumption_ii(a, b);
      }
      return kron::BipartiteKronecker::raw(a, b);
    }();

    if (opt.summary) {
      Timer t;
      const count_t squares = kron::global_squares(kp);
      const double truth_s = t.seconds();
      std::printf("factors        : %s (x) %s  [mode %s]\n",
                  opt.left.c_str(), opt.right.c_str(), opt.mode.c_str());
      std::printf("vertices       : %s\n",
                  format_count(kp.num_vertices()).c_str());
      std::printf("edges          : %s\n",
                  format_count(kp.num_edges()).c_str());
      std::printf("global 4-cycles: %s  (ground truth in %s)\n",
                  format_count(squares).c_str(),
                  format_duration(truth_s).c_str());
      if (graph::is_connected(kp.left()) &&
          graph::is_connected(kp.right()) && kp.left().nnz() > 0 &&
          kp.right().nnz() > 0) {
        const auto pred = kron::predict(kp);
        std::printf("structure      : %s, %s (predicted from factors)\n",
                    pred.bipartite ? "bipartite" : "non-bipartite",
                    pred.connected ? "connected" : "2 components");
      } else {
        std::printf("structure      : %s (disconnected factors — no "
                    "connectivity guarantee)\n",
                    graph::is_bipartite(kp.right()) ||
                            graph::is_bipartite(kp.left())
                        ? "bipartite"
                        : "unknown parity");
      }
    }

    if (!opt.out_dir.empty()) {
      io::StreamGenOptions so;
      so.dir = opt.out_dir;
      so.shards = opt.shards > 0 ? opt.shards : 4;
      so.segment_edges = opt.segment_edges;
      so.resume = opt.resume;
      so.validate = opt.validate;
      if (opt.verify) {
        Timer t;
        const auto rep = io::verify_store(io::real_file_ops(), kp, so);
        obs::log(obs::LogLevel::info, "gen", "verified")
            .field("dir", opt.out_dir)
            .field("segments", static_cast<std::int64_t>(rep.segments))
            .field("edges", static_cast<std::int64_t>(rep.edges))
            .field("rows_checked",
                   static_cast<std::int64_t>(rep.rows_checked))
            .field("edges_checked",
                   static_cast<std::int64_t>(rep.edges_checked))
            .field("elapsed", format_duration(t.seconds()));
      } else {
        Timer t;
        const auto rep = io::generate_durable(io::real_file_ops(), kp, so);
        obs::log(obs::LogLevel::info, "gen", "wrote_store")
            .field("dir", opt.out_dir)
            .field("edges_written",
                   static_cast<std::int64_t>(rep.edges_written))
            .field("segments_sealed",
                   static_cast<std::int64_t>(rep.segments_sealed))
            .field("edges_resumed",
                   static_cast<std::int64_t>(rep.edges_resumed))
            .field("adopted_segments",
                   static_cast<std::int64_t>(rep.adopted_segments))
            .field("discarded_files",
                   static_cast<std::int64_t>(rep.discarded_files))
            .field("rows_checked",
                   static_cast<std::int64_t>(rep.rows_checked))
            .field("edges_checked",
                   static_cast<std::int64_t>(rep.edges_checked))
            .field("elapsed", format_duration(t.seconds()));
      }
    }

    if (!opt.edges_path.empty()) {
      if (opt.shards > 0) {
        const kron::PartitionedStream ps(kp, opt.shards);
        for (index_t r = 0; r < opt.shards; ++r) {
          const std::string path =
              opt.edges_path + "." + std::to_string(r);
          std::ofstream out(path);
          if (!out) throw io_error("cannot write " + path);
          ps.write_shard(r, out);
          obs::log(obs::LogLevel::info, "gen", "wrote_shard")
              .field("path", path)
              .field("entries",
                     static_cast<std::int64_t>(ps.entries_of(r)));
        }
      } else {
        std::ofstream out(opt.edges_path);
        if (!out) throw io_error("cannot write " + opt.edges_path);
        kron::EdgeStream(kp).write_edge_list(out);
        obs::log(obs::LogLevel::info, "gen", "wrote_edges")
            .field("path", opt.edges_path);
      }
    }

    if (!opt.truth_path.empty()) {
      std::ofstream out(opt.truth_path);
      if (!out) throw io_error("cannot write " + opt.truth_path);
      out << "% p q squares (1-based, each undirected edge once)\n";
      kron::GroundTruthStream stream(kp);
      stream.for_each_entry([&](index_t p, index_t q, count_t sq) {
        if (p < q) out << (p + 1) << ' ' << (q + 1) << ' ' << sq << '\n';
      });
      obs::log(obs::LogLevel::info, "gen", "wrote_truth")
          .field("path", opt.truth_path);
    }
    return 0;
  } catch (const io_error& e) {
    die(3, std::string("io error: ") + e.what());
  } catch (const domain_error& e) {
    die(4, std::string("validation failed: ") + e.what());
  } catch (const invalid_argument& e) {
    die(2, e.what());
  } catch (const error& e) {
    die(1, e.what());
  } catch (const std::exception& e) {
    die(1, std::string("unexpected error: ") + e.what());
  }
}
