// kronlab_served — the ground-truth oracle as a long-running daemon.
//
// Loads a BipartiteKronecker spec (same factor SPEC grammar as
// kronlab_gen) and answers serve/ protocol probes over TCP or a
// Unix-domain socket until SIGTERM/SIGINT, then drains gracefully:
// every admitted request is answered before the process exits, and the
// final stats summary goes to stderr.
//
// Examples:
//   kronlab_served --left tritail:1 --right kbip:3,4 --tcp 0
//   (port 0 binds an ephemeral port; the bound port is printed to stdout
//   as "port NNNN" so scripts can read it back)
//   kronlab_served --left nonbip:20,60,7 --right prefbip:100,150,400,9
//                  --mode raw --unix /tmp/kronlab.sock --executors 4
//
// Exit codes match kronlab_gen: 2 = usage / bad spec, 3 = io,
// 4 = validation failure, 1 = anything else.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "kronlab/kronlab.hpp"

using namespace kronlab;

namespace {

struct Options {
  std::string left, right;
  std::string mode = "raw";
  int tcp_port = -1; ///< >= 0: serve TCP (0 = ephemeral)
  std::string unix_path;
  serve::ServerOptions server;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: %s --left SPEC --right SPEC [--mode i|ii|raw]\n"
      "          (--tcp PORT | --unix PATH)\n"
      "          [--executors N] [--queue-depth N] [--cache N]\n\n"
      "factor SPEC forms:\n%s\n\n"
      "--tcp PORT     listen on 127.0.0.1:PORT (0 = ephemeral; the bound\n"
      "               port is printed to stdout as 'port NNNN')\n"
      "--unix PATH    listen on a Unix-domain socket at PATH\n"
      "--executors N  request-executor threads (default %d)\n"
      "--queue-depth N  admitted-frame queue bound (default %d)\n"
      "--cache N      vertex-record LRU entries, 0 disables (default %d)\n\n"
      "SIGTERM/SIGINT drain gracefully: admitted requests are answered,\n"
      "then a stats summary is written to stderr.\n",
      argv0, gen::graph_spec_help().c_str(),
      static_cast<int>(serve::ServerOptions{}.executors),
      static_cast<int>(serve::ServerOptions{}.queue_depth),
      static_cast<int>(serve::ServerOptions{}.cache_capacity));
  std::exit(code);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    const auto need_size = [&](const char* flag) -> std::size_t {
      const long long v =
          std::strtoll(need_value(flag).c_str(), nullptr, 10);
      if (v < 0) {
        std::fprintf(stderr, "%s requires a non-negative integer\n", flag);
        usage(argv[0], 2);
      }
      return static_cast<std::size_t>(v);
    };
    if (arg == "--left") {
      opt.left = need_value("--left");
    } else if (arg == "--right") {
      opt.right = need_value("--right");
    } else if (arg == "--mode") {
      opt.mode = need_value("--mode");
    } else if (arg == "--tcp") {
      opt.tcp_port =
          static_cast<int>(std::strtoll(need_value("--tcp").c_str(),
                                        nullptr, 10));
      if (opt.tcp_port < 0 || opt.tcp_port > 65535) {
        std::fprintf(stderr, "--tcp requires a port in [0, 65535]\n");
        usage(argv[0], 2);
      }
    } else if (arg == "--unix") {
      opt.unix_path = need_value("--unix");
    } else if (arg == "--executors") {
      opt.server.executors = need_size("--executors");
      if (opt.server.executors == 0) {
        std::fprintf(stderr, "--executors requires at least 1\n");
        usage(argv[0], 2);
      }
    } else if (arg == "--queue-depth") {
      opt.server.queue_depth = need_size("--queue-depth");
      if (opt.server.queue_depth == 0) {
        std::fprintf(stderr, "--queue-depth requires at least 1\n");
        usage(argv[0], 2);
      }
    } else if (arg == "--cache") {
      opt.server.cache_capacity = need_size("--cache");
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0], 2);
    }
  }
  if (opt.left.empty() || opt.right.empty()) {
    std::fprintf(stderr, "--left and --right are required\n");
    usage(argv[0], 2);
  }
  if (opt.mode != "i" && opt.mode != "ii" && opt.mode != "raw") {
    std::fprintf(stderr, "--mode must be i, ii, or raw\n");
    usage(argv[0], 2);
  }
  if ((opt.tcp_port < 0) == opt.unix_path.empty()) {
    std::fprintf(stderr, "exactly one of --tcp / --unix is required\n");
    usage(argv[0], 2);
  }
  return opt;
}

// Self-pipe shutdown plumbing: the handler must be async-signal-safe, so
// it only write()s one byte; main blocks on the read end.
int g_shutdown_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  // The result is deliberately ignored: a full pipe means a shutdown is
  // already pending, which is all this byte would say.
  [[maybe_unused]] const auto rc = write(g_shutdown_pipe[1], &byte, 1);
}

void print_stats(const serve::ServerStats& s) {
  std::fprintf(stderr,
               "kronlab_served: connections %llu accepted, %llu rejected\n",
               static_cast<unsigned long long>(s.connections_accepted),
               static_cast<unsigned long long>(s.connections_rejected));
  std::fprintf(
      stderr,
      "kronlab_served: %llu frames, %llu probes, %llu responses\n",
      static_cast<unsigned long long>(s.frames),
      static_cast<unsigned long long>(s.probes),
      static_cast<unsigned long long>(s.responses));
  std::fprintf(
      stderr,
      "kronlab_served: %llu overloaded, %llu malformed, %llu shed at "
      "shutdown\n",
      static_cast<unsigned long long>(s.overloaded),
      static_cast<unsigned long long>(s.malformed),
      static_cast<unsigned long long>(s.shed_shutdown));
  std::fprintf(stderr, "kronlab_served: cache %llu hits / %llu misses\n",
               static_cast<unsigned long long>(s.cache_hits),
               static_cast<unsigned long long>(s.cache_misses));
}

} // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    const auto a = gen::parse_graph_spec(opt.left);
    const auto b = gen::parse_graph_spec(opt.right);
    const auto kp = [&] {
      if (opt.mode == "i") {
        return kron::BipartiteKronecker::assumption_i(a, b);
      }
      if (opt.mode == "ii") {
        return kron::BipartiteKronecker::assumption_ii(a, b);
      }
      return kron::BipartiteKronecker::raw(a, b);
    }();

    if (pipe(g_shutdown_pipe) != 0) {
      throw io_error("cannot create the shutdown pipe");
    }
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    serve::Server server(kp, opt.server);
    auto listener = opt.unix_path.empty()
                        ? serve::listen_tcp(opt.tcp_port)
                        : serve::listen_unix(opt.unix_path);
    if (opt.unix_path.empty()) {
      // Scripts read this line back (essential with --tcp 0).
      std::printf("port %d\n", listener->port());
    } else {
      std::printf("unix %s\n", opt.unix_path.c_str());
    }
    std::fflush(stdout);
    std::fprintf(stderr,
                 "kronlab_served: serving %s (x) %s [mode %s], "
                 "%lld vertices, %lld edges\n",
                 opt.left.c_str(), opt.right.c_str(), opt.mode.c_str(),
                 static_cast<long long>(kp.num_vertices()),
                 static_cast<long long>(kp.num_edges()));
    server.start(std::move(listener));

    // Block until a signal's byte arrives (EINTR restarts the read).
    char byte = 0;
    while (read(g_shutdown_pipe[0], &byte, 1) < 0) {
      if (errno != EINTR) break;
    }
    std::fprintf(stderr, "kronlab_served: draining...\n");
    server.stop();
    print_stats(server.stats());
    std::fprintf(stderr, "kronlab_served: drained, %llu in flight\n",
                 static_cast<unsigned long long>(server.in_flight()));
    return 0;
  } catch (const io_error& e) {
    std::fprintf(stderr, "kronlab_served: io error: %s\n", e.what());
    return 3;
  } catch (const domain_error& e) {
    std::fprintf(stderr, "kronlab_served: validation failed: %s\n",
                 e.what());
    return 4;
  } catch (const invalid_argument& e) {
    std::fprintf(stderr, "kronlab_served: %s\n", e.what());
    return 2;
  } catch (const error& e) {
    std::fprintf(stderr, "kronlab_served: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "kronlab_served: unexpected error: %s\n",
                 e.what());
    return 1;
  }
}
