// kronlab_served — the ground-truth oracle as a long-running daemon.
//
// Loads a BipartiteKronecker spec (same factor SPEC grammar as
// kronlab_gen) and answers serve/ protocol probes over TCP or a
// Unix-domain socket until SIGTERM/SIGINT, then drains gracefully:
// every admitted request is answered before the process exits.
//
// Operational events (startup, drain progress, the final stats summary,
// watchdog stall warnings) are structured obs/log lines on stderr,
// leveled via KRONLAB_LOG or --log.  Live telemetry is served in-band:
// `kronlab_query --stats` issues the protocol's SERVER_STATS probe and
// prints the kronlab-stats-v1 snapshot.
//
// Examples:
//   kronlab_served --left tritail:1 --right kbip:3,4 --tcp 0
//   (port 0 binds an ephemeral port; the bound port is printed to stdout
//   as "port NNNN" so scripts can read it back)
//   kronlab_served --left nonbip:20,60,7 --right prefbip:100,150,400,9
//                  --mode raw --unix /tmp/kronlab.sock --executors 4
//
// Exit codes match kronlab_gen: 2 = usage / bad spec, 3 = io,
// 4 = validation failure, 1 = anything else.

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "kronlab/kronlab.hpp"
#include "kronlab/obs/log.hpp"
#include "kronlab/obs/stats.hpp"
#include "kronlab/obs/watchdog.hpp"

using namespace kronlab;

namespace {

struct Options {
  std::string left, right;
  std::string mode = "raw";
  int tcp_port = -1; ///< >= 0: serve TCP (0 = ephemeral)
  std::string unix_path;
  serve::ServerOptions server;
  /// Stall-watchdog deadline; 0 disables the watchdog thread.
  std::size_t watchdog_ms = 1000;
};

[[noreturn]] void usage(const char* argv0, int code) {
  // Usage text is CLI output for the invoking human, not an operational
  // event — it stays printf-family by design.
  // kronlab-lint: allow(obs-log)
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: %s --left SPEC --right SPEC [--mode i|ii|raw]\n"
      "          (--tcp PORT | --unix PATH)\n"
      "          [--executors N] [--queue-depth N] [--cache N]\n"
      "          [--watchdog-ms N] [--log LEVEL]\n\n"
      "factor SPEC forms:\n%s\n\n"
      "--tcp PORT     listen on 127.0.0.1:PORT (0 = ephemeral; the bound\n"
      "               port is printed to stdout as 'port NNNN')\n"
      "--unix PATH    listen on a Unix-domain socket at PATH\n"
      "--executors N  request-executor threads (default %d)\n"
      "--queue-depth N  admitted-frame queue bound (default %d)\n"
      "--cache N      vertex-record LRU entries, 0 disables (default %d)\n"
      "--watchdog-ms N  stall-watchdog deadline in ms, 0 disables\n"
      "               (default 1000) — a request/exchange/commit stuck\n"
      "               longer than this logs a structured warning\n"
      "--log LEVEL    debug|info|warn|error|off (default info, or\n"
      "               KRONLAB_LOG)\n\n"
      "SIGTERM/SIGINT drain gracefully: admitted requests are answered\n"
      "and drain progress + a final summary are logged to stderr.\n"
      "Live stats: kronlab_query ... --stats (KRONLAB_STATS=0 disables\n"
      "histogram recording).\n",
      argv0, gen::graph_spec_help().c_str(),
      static_cast<int>(serve::ServerOptions{}.executors),
      static_cast<int>(serve::ServerOptions{}.queue_depth),
      static_cast<int>(serve::ServerOptions{}.cache_capacity));
  std::exit(code);
}

/// CLI argument diagnostics go straight to the terminal (the logger may
/// be filtered off) and exit with the usage code.
[[noreturn]] void die_usage(const char* argv0, const std::string& msg) {
  // kronlab-lint: allow(obs-log)
  std::fprintf(stderr, "kronlab_served: %s\n", msg.c_str());
  usage(argv0, 2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        die_usage(argv[0], std::string(flag) + " requires a value");
      }
      return argv[++i];
    };
    const auto need_size = [&](const char* flag) -> std::size_t {
      const long long v =
          std::strtoll(need_value(flag).c_str(), nullptr, 10);
      if (v < 0) {
        die_usage(argv[0],
                  std::string(flag) + " requires a non-negative integer");
      }
      return static_cast<std::size_t>(v);
    };
    if (arg == "--left") {
      opt.left = need_value("--left");
    } else if (arg == "--right") {
      opt.right = need_value("--right");
    } else if (arg == "--mode") {
      opt.mode = need_value("--mode");
    } else if (arg == "--tcp") {
      opt.tcp_port =
          static_cast<int>(std::strtoll(need_value("--tcp").c_str(),
                                        nullptr, 10));
      if (opt.tcp_port < 0 || opt.tcp_port > 65535) {
        die_usage(argv[0], "--tcp requires a port in [0, 65535]");
      }
    } else if (arg == "--unix") {
      opt.unix_path = need_value("--unix");
    } else if (arg == "--executors") {
      opt.server.executors = need_size("--executors");
      if (opt.server.executors == 0) {
        die_usage(argv[0], "--executors requires at least 1");
      }
    } else if (arg == "--queue-depth") {
      opt.server.queue_depth = need_size("--queue-depth");
      if (opt.server.queue_depth == 0) {
        die_usage(argv[0], "--queue-depth requires at least 1");
      }
    } else if (arg == "--cache") {
      opt.server.cache_capacity = need_size("--cache");
    } else if (arg == "--watchdog-ms") {
      opt.watchdog_ms = need_size("--watchdog-ms");
    } else if (arg == "--log") {
      obs::LogLevel level{};
      if (!obs::parse_log_level(need_value("--log"), level)) {
        die_usage(argv[0], "--log must be debug|info|warn|error|off");
      }
      obs::set_log_level(level);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      die_usage(argv[0], "unknown argument: " + arg);
    }
  }
  if (opt.left.empty() || opt.right.empty()) {
    die_usage(argv[0], "--left and --right are required");
  }
  if (opt.mode != "i" && opt.mode != "ii" && opt.mode != "raw") {
    die_usage(argv[0], "--mode must be i, ii, or raw");
  }
  if ((opt.tcp_port < 0) == opt.unix_path.empty()) {
    die_usage(argv[0], "exactly one of --tcp / --unix is required");
  }
  return opt;
}

// Self-pipe shutdown plumbing: the handler must be async-signal-safe, so
// it only write()s one byte; main blocks on the read end.
int g_shutdown_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  // The result is deliberately ignored: a full pipe means a shutdown is
  // already pending, which is all this byte would say.
  [[maybe_unused]] const auto rc = write(g_shutdown_pipe[1], &byte, 1);
}

void log_summary(const serve::ServerStats& s) {
  obs::log(obs::LogLevel::info, "served", "summary")
      .field("connections_accepted", s.connections_accepted)
      .field("connections_rejected", s.connections_rejected)
      .field("frames", s.frames)
      .field("probes", s.probes)
      .field("responses", s.responses)
      .field("overloaded", s.overloaded)
      .field("malformed", s.malformed)
      .field("shed_shutdown", s.shed_shutdown)
      .field("cache_hits", s.cache_hits)
      .field("cache_misses", s.cache_misses);
}

} // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    const auto a = gen::parse_graph_spec(opt.left);
    const auto b = gen::parse_graph_spec(opt.right);
    const auto kp = [&] {
      if (opt.mode == "i") {
        return kron::BipartiteKronecker::assumption_i(a, b);
      }
      if (opt.mode == "ii") {
        return kron::BipartiteKronecker::assumption_ii(a, b);
      }
      return kron::BipartiteKronecker::raw(a, b);
    }();

    if (pipe(g_shutdown_pipe) != 0) {
      throw io_error("cannot create the shutdown pipe");
    }
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    serve::Server server(kp, opt.server);
    if (opt.watchdog_ms > 0) {
      obs::WatchdogOptions wd;
      wd.deadline = std::chrono::milliseconds(opt.watchdog_ms);
      wd.poll = std::chrono::milliseconds(
          std::max<std::size_t>(10, opt.watchdog_ms / 4));
      obs::watchdog_start(wd);
    }
    auto listener = opt.unix_path.empty()
                        ? serve::listen_tcp(opt.tcp_port)
                        : serve::listen_unix(opt.unix_path);
    if (opt.unix_path.empty()) {
      // Scripts read this line back (essential with --tcp 0).
      std::printf("port %d\n", listener->port());
    } else {
      std::printf("unix %s\n", opt.unix_path.c_str());
    }
    std::fflush(stdout);
    obs::log(obs::LogLevel::info, "served", "serving")
        .field("left", opt.left)
        .field("right", opt.right)
        .field("mode", opt.mode)
        .field("vertices", static_cast<std::int64_t>(kp.num_vertices()))
        .field("edges", static_cast<std::int64_t>(kp.num_edges()))
        .field("executors", static_cast<std::int64_t>(opt.server.executors))
        .field("stats_enabled", obs::stats_enabled())
        .field("watchdog_ms", static_cast<std::int64_t>(opt.watchdog_ms));
    server.start(std::move(listener));

    // Block until a signal's byte arrives (EINTR restarts the read).
    char byte = 0;
    while (read(g_shutdown_pipe[0], &byte, 1) < 0) {
      if (errno != EINTR) break;
    }
    obs::log(obs::LogLevel::info, "served", "drain_begin")
        .field("in_flight", server.in_flight());
    server.stop();
    log_summary(server.stats());
    obs::log(obs::LogLevel::info, "served", "drained")
        .field("in_flight", server.in_flight());
    obs::watchdog_stop();
    return 0;
  } catch (const io_error& e) {
    obs::log(obs::LogLevel::error, "served", "fatal")
        .field("kind", "io")
        .field("what", e.what());
    return 3;
  } catch (const domain_error& e) {
    obs::log(obs::LogLevel::error, "served", "fatal")
        .field("kind", "validation")
        .field("what", e.what());
    return 4;
  } catch (const invalid_argument& e) {
    obs::log(obs::LogLevel::error, "served", "fatal")
        .field("kind", "usage")
        .field("what", e.what());
    return 2;
  } catch (const error& e) {
    obs::log(obs::LogLevel::error, "served", "fatal")
        .field("kind", "error")
        .field("what", e.what());
    return 1;
  } catch (const std::exception& e) {
    obs::log(obs::LogLevel::error, "served", "fatal")
        .field("kind", "unexpected")
        .field("what", e.what());
    return 1;
  }
}
