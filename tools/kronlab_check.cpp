// kronlab_check — score a system under test against Kronecker ground
// truth.
//
// The companion to kronlab_gen: given the same factor specs (so the same
// deterministic product), it validates artifacts a SUT produced:
//
//   --expect-global N      check a claimed global 4-cycle count
//   --check-truth FILE     re-verify a "p q squares" file (e.g. one a SUT
//                          filled in) — every line is checked exactly
//   --check-edges FILE     verify an edge-list file matches the product
//                          exactly (same edges, nothing missing or extra)
//   --probes N             spot-check N random vertices/edges and print
//                          the exact records (for manual comparison)
//
// Exit code 0 iff every requested check passed.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_set>

#include "kronlab/kronlab.hpp"

using namespace kronlab;

namespace {

struct Options {
  std::string left, right;
  std::string mode = "raw";
  std::string truth_path;
  std::string edges_path;
  count_t expect_global = -1;
  index_t probes = 0;
  bool has_expect_global = false;
};

[[noreturn]] void usage(const char* argv0, int code) {
  // Usage text is CLI output for the invoking human, not an operational
  // event — it stays printf-family by design.
  // kronlab-lint: allow(obs-log)
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s --left SPEC --right SPEC [--mode i|ii|raw]\n"
               "          [--expect-global N] [--check-truth FILE]\n"
               "          [--check-edges FILE] [--probes N]\n\n"
               "factor SPEC forms:\n%s\n",
               argv0, gen::graph_spec_help().c_str());
  std::exit(code);
}

/// CLI argument diagnostics go straight to the terminal, then the usage
/// text and exit code 2.
[[noreturn]] void die_usage(const char* argv0, const std::string& msg) {
  // kronlab-lint: allow(obs-log)
  std::fprintf(stderr, "kronlab_check: %s\n", msg.c_str());
  usage(argv0, 2);
}

/// Runtime-failure funnel: message to the terminal, then exit.
/// Exit codes: 0 = all checks passed, 2 = usage / bad spec, 3 = io,
/// 4 = validation mismatch, 1 = anything else.
[[noreturn]] void die(int code, const std::string& msg) {
  // kronlab-lint: allow(obs-log)
  std::fprintf(stderr, "kronlab_check: %s\n", msg.c_str());
  std::exit(code);
}

/// Per-finding diagnostics (WRONG/EXTRA/MISSING lines) are the checker's
/// primary human-facing output — verbatim stderr, not logfmt.
void note(const std::string& msg) {
  // kronlab-lint: allow(obs-log)
  std::fprintf(stderr, "%s\n", msg.c_str());
}

std::string num(long long v) { return std::to_string(v); }

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        die_usage(argv[0], std::string(flag) + " requires a value");
      }
      return argv[++i];
    };
    if (arg == "--left") {
      opt.left = need_value("--left");
    } else if (arg == "--right") {
      opt.right = need_value("--right");
    } else if (arg == "--mode") {
      opt.mode = need_value("--mode");
    } else if (arg == "--expect-global") {
      opt.expect_global =
          std::strtoll(need_value("--expect-global").c_str(), nullptr, 10);
      opt.has_expect_global = true;
    } else if (arg == "--check-truth") {
      opt.truth_path = need_value("--check-truth");
    } else if (arg == "--check-edges") {
      opt.edges_path = need_value("--check-edges");
    } else if (arg == "--probes") {
      opt.probes =
          std::strtoll(need_value("--probes").c_str(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      die_usage(argv[0], "unknown argument: " + arg);
    }
  }
  if (opt.left.empty() || opt.right.empty()) {
    die_usage(argv[0], "--left and --right are required");
  }
  return opt;
}

bool check_truth_file(const kron::GroundTruthOracle& oracle,
                      const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open " + path);
  std::string line;
  count_t checked = 0, bad = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%' || line[0] == '#') continue;
    std::istringstream ls(line);
    index_t p, q;
    count_t claimed;
    if (!(ls >> p >> q >> claimed)) {
      note("  malformed truth line: " + line);
      ++bad;
      continue;
    }
    ++checked;
    if (p < 1 || q < 1 || p > oracle.num_vertices() ||
        q > oracle.num_vertices()) {
      if (bad < 5) {
        note("  WRONG: (" + num(p) + "," + num(q) + ") out of range");
      }
      ++bad;
      continue;
    }
    try {
      const auto record = oracle.edge(p - 1, q - 1);
      if (record.squares != claimed) {
        if (bad < 5) {
          note("  WRONG: edge (" + num(p) + "," + num(q) + ") claimed " +
               num(claimed) + " exact " + num(record.squares));
        }
        ++bad;
      }
    } catch (const invalid_argument&) {
      if (bad < 5) {
        note("  WRONG: (" + num(p) + "," + num(q) + ") is not an edge");
      }
      ++bad;
    }
  }
  std::printf("truth file  : %lld lines checked, %lld wrong -> %s\n",
              static_cast<long long>(checked), static_cast<long long>(bad),
              bad == 0 ? "PASS" : "FAIL");
  return bad == 0;
}

bool check_edges_file(const kron::BipartiteKronecker& kp,
                      const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open " + path);
  std::unordered_set<std::uint64_t> seen;
  const auto key = [&](index_t p, index_t q) {
    if (p > q) std::swap(p, q);
    return static_cast<std::uint64_t>(p) *
               static_cast<std::uint64_t>(kp.num_vertices()) +
           static_cast<std::uint64_t>(q);
  };
  std::string line;
  count_t extra = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%' || line[0] == '#') continue;
    std::istringstream ls(line);
    index_t p, q;
    if (!(ls >> p >> q)) {
      note("  malformed edge line: " + line);
      ++extra;
      continue;
    }
    --p;
    --q;
    if (!kp.has_edge(p, q)) {
      if (extra < 5) {
        note("  EXTRA edge (" + num(p + 1) + "," + num(q + 1) + ")");
      }
      ++extra;
      continue;
    }
    seen.insert(key(p, q));
  }
  count_t missing = 0;
  kron::EdgeStream(kp).for_each_edge([&](index_t p, index_t q) {
    if (!seen.count(key(p, q))) {
      if (missing < 5) {
        note("  MISSING edge (" + num(p + 1) + "," + num(q + 1) + ")");
      }
      ++missing;
    }
  });
  std::printf("edge file   : %zu distinct present, %lld extra, %lld "
              "missing -> %s\n",
              seen.size(), static_cast<long long>(extra),
              static_cast<long long>(missing),
              (extra == 0 && missing == 0) ? "PASS" : "FAIL");
  return extra == 0 && missing == 0;
}

} // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    const auto a = gen::parse_graph_spec(opt.left);
    const auto b = gen::parse_graph_spec(opt.right);
    const auto kp = [&] {
      if (opt.mode == "i") {
        return kron::BipartiteKronecker::assumption_i(a, b);
      }
      if (opt.mode == "ii") {
        return kron::BipartiteKronecker::assumption_ii(a, b);
      }
      return kron::BipartiteKronecker::raw(a, b);
    }();
    const kron::GroundTruthOracle oracle(kp);

    bool ok = true;
    if (opt.has_expect_global) {
      const count_t exact = kron::global_squares(kp);
      const bool pass = exact == opt.expect_global;
      std::printf("global count: claimed %s exact %s -> %s\n",
                  format_count(opt.expect_global).c_str(),
                  format_count(exact).c_str(), pass ? "PASS" : "FAIL");
      ok &= pass;
    }
    if (!opt.truth_path.empty()) {
      ok &= check_truth_file(oracle, opt.truth_path);
    }
    if (!opt.edges_path.empty()) {
      ok &= check_edges_file(kp, opt.edges_path);
    }
    if (opt.probes > 0) {
      Rng rng(12345);
      std::printf("probes:\n");
      for (index_t t = 0; t < opt.probes; ++t) {
        const auto v = oracle.sample_vertex(rng);
        const auto e = oracle.sample_edge(rng);
        std::printf("  vertex %lld: deg=%lld squares=%lld | edge "
                    "(%lld,%lld): squares=%lld\n",
                    static_cast<long long>(v.p),
                    static_cast<long long>(v.degree),
                    static_cast<long long>(v.squares),
                    static_cast<long long>(e.p),
                    static_cast<long long>(e.q),
                    static_cast<long long>(e.squares));
      }
    }
    // Exit codes: 0 = all checks passed, 2 = usage / bad spec, 3 = io,
    // 4 = validation mismatch, 1 = anything else.
    return ok ? 0 : 4;
  } catch (const io_error& e) {
    die(3, std::string("io error: ") + e.what());
  } catch (const invalid_argument& e) {
    die(2, e.what());
  } catch (const error& e) {
    die(1, e.what());
  } catch (const std::exception& e) {
    die(1, std::string("unexpected error: ") + e.what());
  }
}
