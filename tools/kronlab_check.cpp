// kronlab_check — score a system under test against Kronecker ground
// truth.
//
// The companion to kronlab_gen: given the same factor specs (so the same
// deterministic product), it validates artifacts a SUT produced:
//
//   --expect-global N      check a claimed global 4-cycle count
//   --check-truth FILE     re-verify a "p q squares" file (e.g. one a SUT
//                          filled in) — every line is checked exactly
//   --check-edges FILE     verify an edge-list file matches the product
//                          exactly (same edges, nothing missing or extra)
//   --probes N             spot-check N random vertices/edges and print
//                          the exact records (for manual comparison)
//
// Exit code 0 iff every requested check passed.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_set>

#include "kronlab/kronlab.hpp"

using namespace kronlab;

namespace {

struct Options {
  std::string left, right;
  std::string mode = "raw";
  std::string truth_path;
  std::string edges_path;
  count_t expect_global = -1;
  index_t probes = 0;
  bool has_expect_global = false;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s --left SPEC --right SPEC [--mode i|ii|raw]\n"
               "          [--expect-global N] [--check-truth FILE]\n"
               "          [--check-edges FILE] [--probes N]\n\n"
               "factor SPEC forms:\n%s\n",
               argv0, gen::graph_spec_help().c_str());
  std::exit(code);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    if (arg == "--left") {
      opt.left = need_value("--left");
    } else if (arg == "--right") {
      opt.right = need_value("--right");
    } else if (arg == "--mode") {
      opt.mode = need_value("--mode");
    } else if (arg == "--expect-global") {
      opt.expect_global =
          std::strtoll(need_value("--expect-global").c_str(), nullptr, 10);
      opt.has_expect_global = true;
    } else if (arg == "--check-truth") {
      opt.truth_path = need_value("--check-truth");
    } else if (arg == "--check-edges") {
      opt.edges_path = need_value("--check-edges");
    } else if (arg == "--probes") {
      opt.probes =
          std::strtoll(need_value("--probes").c_str(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0], 2);
    }
  }
  if (opt.left.empty() || opt.right.empty()) {
    std::fprintf(stderr, "--left and --right are required\n");
    usage(argv[0], 2);
  }
  return opt;
}

bool check_truth_file(const kron::GroundTruthOracle& oracle,
                      const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open " + path);
  std::string line;
  count_t checked = 0, bad = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%' || line[0] == '#') continue;
    std::istringstream ls(line);
    index_t p, q;
    count_t claimed;
    if (!(ls >> p >> q >> claimed)) {
      std::fprintf(stderr, "  malformed truth line: %s\n", line.c_str());
      ++bad;
      continue;
    }
    ++checked;
    if (p < 1 || q < 1 || p > oracle.num_vertices() ||
        q > oracle.num_vertices()) {
      if (bad < 5) {
        std::fprintf(stderr, "  WRONG: (%lld,%lld) out of range\n",
                     static_cast<long long>(p), static_cast<long long>(q));
      }
      ++bad;
      continue;
    }
    try {
      const auto record = oracle.edge(p - 1, q - 1);
      if (record.squares != claimed) {
        if (bad < 5) {
          std::fprintf(
              stderr, "  WRONG: edge (%lld,%lld) claimed %lld exact %lld\n",
              static_cast<long long>(p), static_cast<long long>(q),
              static_cast<long long>(claimed),
              static_cast<long long>(record.squares));
        }
        ++bad;
      }
    } catch (const invalid_argument&) {
      if (bad < 5) {
        std::fprintf(stderr, "  WRONG: (%lld,%lld) is not an edge\n",
                     static_cast<long long>(p), static_cast<long long>(q));
      }
      ++bad;
    }
  }
  std::printf("truth file  : %lld lines checked, %lld wrong -> %s\n",
              static_cast<long long>(checked), static_cast<long long>(bad),
              bad == 0 ? "PASS" : "FAIL");
  return bad == 0;
}

bool check_edges_file(const kron::BipartiteKronecker& kp,
                      const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open " + path);
  std::unordered_set<std::uint64_t> seen;
  const auto key = [&](index_t p, index_t q) {
    if (p > q) std::swap(p, q);
    return static_cast<std::uint64_t>(p) *
               static_cast<std::uint64_t>(kp.num_vertices()) +
           static_cast<std::uint64_t>(q);
  };
  std::string line;
  count_t extra = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%' || line[0] == '#') continue;
    std::istringstream ls(line);
    index_t p, q;
    if (!(ls >> p >> q)) {
      std::fprintf(stderr, "  malformed edge line: %s\n", line.c_str());
      ++extra;
      continue;
    }
    --p;
    --q;
    if (!kp.has_edge(p, q)) {
      if (extra < 5) {
        std::fprintf(stderr, "  EXTRA edge (%lld,%lld)\n",
                     static_cast<long long>(p + 1),
                     static_cast<long long>(q + 1));
      }
      ++extra;
      continue;
    }
    seen.insert(key(p, q));
  }
  count_t missing = 0;
  kron::EdgeStream(kp).for_each_edge([&](index_t p, index_t q) {
    if (!seen.count(key(p, q))) {
      if (missing < 5) {
        std::fprintf(stderr, "  MISSING edge (%lld,%lld)\n",
                     static_cast<long long>(p + 1),
                     static_cast<long long>(q + 1));
      }
      ++missing;
    }
  });
  std::printf("edge file   : %zu distinct present, %lld extra, %lld "
              "missing -> %s\n",
              seen.size(), static_cast<long long>(extra),
              static_cast<long long>(missing),
              (extra == 0 && missing == 0) ? "PASS" : "FAIL");
  return extra == 0 && missing == 0;
}

} // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    const auto a = gen::parse_graph_spec(opt.left);
    const auto b = gen::parse_graph_spec(opt.right);
    const auto kp = [&] {
      if (opt.mode == "i") {
        return kron::BipartiteKronecker::assumption_i(a, b);
      }
      if (opt.mode == "ii") {
        return kron::BipartiteKronecker::assumption_ii(a, b);
      }
      return kron::BipartiteKronecker::raw(a, b);
    }();
    const kron::GroundTruthOracle oracle(kp);

    bool ok = true;
    if (opt.has_expect_global) {
      const count_t exact = kron::global_squares(kp);
      const bool pass = exact == opt.expect_global;
      std::printf("global count: claimed %s exact %s -> %s\n",
                  format_count(opt.expect_global).c_str(),
                  format_count(exact).c_str(), pass ? "PASS" : "FAIL");
      ok &= pass;
    }
    if (!opt.truth_path.empty()) {
      ok &= check_truth_file(oracle, opt.truth_path);
    }
    if (!opt.edges_path.empty()) {
      ok &= check_edges_file(kp, opt.edges_path);
    }
    if (opt.probes > 0) {
      Rng rng(12345);
      std::printf("probes:\n");
      for (index_t t = 0; t < opt.probes; ++t) {
        const auto v = oracle.sample_vertex(rng);
        const auto e = oracle.sample_edge(rng);
        std::printf("  vertex %lld: deg=%lld squares=%lld | edge "
                    "(%lld,%lld): squares=%lld\n",
                    static_cast<long long>(v.p),
                    static_cast<long long>(v.degree),
                    static_cast<long long>(v.squares),
                    static_cast<long long>(e.p),
                    static_cast<long long>(e.q),
                    static_cast<long long>(e.squares));
      }
    }
    // Exit codes: 0 = all checks passed, 2 = usage / bad spec, 3 = io,
    // 4 = validation mismatch, 1 = anything else.
    return ok ? 0 : 4;
  } catch (const io_error& e) {
    std::fprintf(stderr, "kronlab_check: io error: %s\n", e.what());
    return 3;
  } catch (const invalid_argument& e) {
    std::fprintf(stderr, "kronlab_check: %s\n", e.what());
    return 2;
  } catch (const error& e) {
    std::fprintf(stderr, "kronlab_check: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "kronlab_check: unexpected error: %s\n", e.what());
    return 1;
  }
}
